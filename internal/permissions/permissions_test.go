package permissions

import (
	"sort"
	"testing"

	"marketscope/internal/dex"
	"marketscope/internal/manifest"
)

func TestDefaultMapLookups(t *testing.T) {
	m := DefaultMap()
	if p, ok := m.PermissionForAPI("android.telephony.TelephonyManager.getDeviceId"); !ok || p != ReadPhoneState {
		t.Errorf("getDeviceId -> %q, %v", p, ok)
	}
	if p, ok := m.PermissionForAPI("android.hardware.Camera.open"); !ok || p != Camera {
		t.Errorf("Camera.open -> %q, %v", p, ok)
	}
	if _, ok := m.PermissionForAPI("com.example.NotAnAPI.call"); ok {
		t.Error("unknown API resolved to a permission")
	}
	if p, ok := m.PermissionForIntent("android.intent.action.CALL"); !ok || p != CallPhone {
		t.Errorf("CALL intent -> %q, %v", p, ok)
	}
	if _, ok := m.PermissionForIntent("android.intent.action.MAIN"); ok {
		t.Error("MAIN intent should not require a permission")
	}
	if p, ok := m.PermissionForURI("content://com.android.contacts/data/1"); !ok || p != ReadContacts {
		t.Errorf("contacts uri -> %q, %v", p, ok)
	}
	if _, ok := m.PermissionForURI("content://com.example.custom"); ok {
		t.Error("unknown uri resolved to a permission")
	}
}

func TestPermissionForURILongestPrefix(t *testing.T) {
	m := NewMap(nil, nil, map[string]string{
		"content://sms":       ReadSMS,
		"content://sms/draft": "android.permission.WRITE_SMS_DRAFT",
	})
	if p, _ := m.PermissionForURI("content://sms/draft/7"); p != "android.permission.WRITE_SMS_DRAFT" {
		t.Errorf("longest-prefix match failed: %q", p)
	}
	if p, _ := m.PermissionForURI("content://sms/inbox"); p != ReadSMS {
		t.Errorf("prefix match failed: %q", p)
	}
}

func TestMappedPermissionsSortedUnique(t *testing.T) {
	perms := DefaultMap().MappedPermissions()
	if len(perms) < 15 {
		t.Fatalf("suspiciously small permission map: %d entries", len(perms))
	}
	if !sort.StringsAreSorted(perms) {
		t.Error("MappedPermissions not sorted")
	}
	seen := map[string]bool{}
	for _, p := range perms {
		if seen[p] {
			t.Errorf("duplicate %q", p)
		}
		seen[p] = true
	}
	if !seen[ReadPhoneState] || !seen[Camera] || !seen[AccessFineLocation] {
		t.Error("core permissions missing from map")
	}
}

func TestAPIsForPermission(t *testing.T) {
	apis := DefaultMap().APIsForPermission(ReadPhoneState)
	if len(apis) < 3 {
		t.Fatalf("too few READ_PHONE_STATE APIs: %v", apis)
	}
	if !sort.StringsAreSorted(apis) {
		t.Error("APIsForPermission not sorted")
	}
	if got := DefaultMap().APIsForPermission("android.permission.FAKE"); len(got) != 0 {
		t.Errorf("unknown permission returned APIs: %v", got)
	}
}

func TestIsDangerous(t *testing.T) {
	if !IsDangerous(ReadPhoneState) || !IsDangerous(Camera) || !IsDangerous(AccessFineLocation) {
		t.Error("dangerous permissions not flagged")
	}
	if IsDangerous(Internet) || IsDangerous(Vibrate) {
		t.Error("normal permissions flagged as dangerous")
	}
	if len(DangerousPermissions()) < 10 {
		t.Error("dangerous permission list too small")
	}
}

func TestMapSize(t *testing.T) {
	apis, intents, uris := DefaultMap().Size()
	if apis < 30 || intents < 4 || uris < 5 {
		t.Errorf("map sizes too small: %d/%d/%d", apis, intents, uris)
	}
}

func overPrivApp() (*manifest.Manifest, *dex.File) {
	m := &manifest.Manifest{
		Package: "com.example.flash", VersionCode: 3, MinSDK: 9,
		Permissions: []string{
			Internet,                        // used
			ReadPhoneState,                  // unused -> over-privileged
			Camera,                          // unused -> over-privileged
			AccessFineLocation,              // used via API
			"com.example.CUSTOM_PERMISSION", // unmapped, must be ignored
		},
	}
	code := &dex.File{Classes: []dex.Class{
		{Name: "com.example.flash.Main", Methods: []dex.Method{
			{Name: "run", APICalls: []string{
				"java.net.URL.openConnection",
				"android.location.LocationManager.getLastKnownLocation",
			}},
		}},
	}}
	return m, code
}

func TestAnalyzeOverPrivilege(t *testing.T) {
	a := NewAnalyzer(nil)
	m, code := overPrivApp()
	u := a.Analyze(m, code)
	if !u.IsOverPrivileged() {
		t.Fatal("app should be over-privileged")
	}
	if u.OverPrivilegedCount() != 2 {
		t.Errorf("unused = %v, want 2 entries", u.Unused)
	}
	wantUnused := map[string]bool{ReadPhoneState: true, Camera: true}
	for _, p := range u.Unused {
		if !wantUnused[p] {
			t.Errorf("unexpected unused permission %q", p)
		}
	}
	for _, p := range u.Requested {
		if p == "com.example.CUSTOM_PERMISSION" {
			t.Error("unmapped permission should not be judged")
		}
	}
	dangerous := u.UnusedDangerous()
	if len(dangerous) != 2 {
		t.Errorf("UnusedDangerous = %v", dangerous)
	}
}

func TestAnalyzeMissingPermissions(t *testing.T) {
	a := NewAnalyzer(nil)
	m := &manifest.Manifest{Package: "com.example.x", VersionCode: 1, MinSDK: 9}
	code := &dex.File{Classes: []dex.Class{
		{Name: "com.example.x.Main", Methods: []dex.Method{
			{Name: "send", APICalls: []string{"android.telephony.SmsManager.sendTextMessage"}},
		}},
	}}
	u := a.Analyze(m, code)
	if len(u.Missing) != 1 || u.Missing[0] != SendSMS {
		t.Errorf("Missing = %v, want [SEND_SMS]", u.Missing)
	}
	if u.IsOverPrivileged() {
		t.Error("app with no requested permissions cannot be over-privileged")
	}
}

func TestAnalyzeUsesIntentsAndURIs(t *testing.T) {
	a := NewAnalyzer(nil)
	m := &manifest.Manifest{
		Package: "com.example.dialer", VersionCode: 1, MinSDK: 9,
		Permissions: []string{CallPhone, ReadContacts},
	}
	code := &dex.File{Classes: []dex.Class{
		{Name: "com.example.dialer.Main", Methods: []dex.Method{
			{Name: "dial", IntentActions: []string{"android.intent.action.CALL"}},
			{Name: "lookup", ContentURIs: []string{"content://com.android.contacts/people"}},
		}},
	}}
	u := a.Analyze(m, code)
	if u.IsOverPrivileged() {
		t.Errorf("intent/uri usage not recognized: unused=%v", u.Unused)
	}
	if len(u.Used) != 2 {
		t.Errorf("Used = %v, want CALL_PHONE and READ_CONTACTS", u.Used)
	}
}

func TestAnalyzerDefaultsToBuiltinMap(t *testing.T) {
	a := NewAnalyzer(nil)
	b := NewAnalyzer(DefaultMap())
	m, code := overPrivApp()
	ua := a.Analyze(m, code)
	ub := b.Analyze(m, code)
	if len(ua.Unused) != len(ub.Unused) {
		t.Error("nil map should behave like DefaultMap")
	}
}

func TestCustomDegradedMap(t *testing.T) {
	// An empty map must judge nothing (ablation case).
	a := NewAnalyzer(NewMap(nil, nil, nil))
	m, code := overPrivApp()
	u := a.Analyze(m, code)
	if len(u.Requested) != 0 || len(u.Used) != 0 || len(u.Unused) != 0 {
		t.Errorf("empty map should produce empty usage, got %+v", u)
	}
}

func BenchmarkAnalyze(b *testing.B) {
	a := NewAnalyzer(nil)
	m, code := overPrivApp()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Analyze(m, code)
	}
}
