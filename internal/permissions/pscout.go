// Package permissions implements the PScout-style permission map and the
// over-privilege analysis of Section 6.3.
//
// PScout provides, for a given Android version, the mapping from framework
// API calls, protected intents and content-provider URIs to the permissions
// they require. Comparing the permissions an app *uses* (reachable through
// that map from its code) with the permissions it *requests* in its manifest
// yields the set of over-privileged (requested but unused) permissions.
//
// The map below is a curated subset of the PScout 5.1.1 map covering the
// permissions the paper reports as most commonly over-privileged
// (READ_PHONE_STATE, ACCESS_COARSE_LOCATION, ACCESS_FINE_LOCATION, CAMERA)
// plus the other dangerous permissions the synthetic corpus exercises.
package permissions

import "sort"

// Canonical permission name constants used across the corpus.
const (
	ReadPhoneState       = "android.permission.READ_PHONE_STATE"
	AccessCoarseLocation = "android.permission.ACCESS_COARSE_LOCATION"
	AccessFineLocation   = "android.permission.ACCESS_FINE_LOCATION"
	Camera               = "android.permission.CAMERA"
	ReadContacts         = "android.permission.READ_CONTACTS"
	WriteContacts        = "android.permission.WRITE_CONTACTS"
	ReadSMS              = "android.permission.READ_SMS"
	SendSMS              = "android.permission.SEND_SMS"
	ReceiveSMS           = "android.permission.RECEIVE_SMS"
	RecordAudio          = "android.permission.RECORD_AUDIO"
	ReadCallLog          = "android.permission.READ_CALL_LOG"
	CallPhone            = "android.permission.CALL_PHONE"
	ReadCalendar         = "android.permission.READ_CALENDAR"
	WriteCalendar        = "android.permission.WRITE_CALENDAR"
	ReadExternalStorage  = "android.permission.READ_EXTERNAL_STORAGE"
	WriteExternalStorage = "android.permission.WRITE_EXTERNAL_STORAGE"
	GetAccounts          = "android.permission.GET_ACCOUNTS"
	BodySensors          = "android.permission.BODY_SENSORS"
	Internet             = "android.permission.INTERNET"
	AccessNetworkState   = "android.permission.ACCESS_NETWORK_STATE"
	AccessWifiState      = "android.permission.ACCESS_WIFI_STATE"
	Bluetooth            = "android.permission.BLUETOOTH"
	NFC                  = "android.permission.NFC"
	Vibrate              = "android.permission.VIBRATE"
	WakeLock             = "android.permission.WAKE_LOCK"
	ReceiveBootCompleted = "android.permission.RECEIVE_BOOT_COMPLETED"
	SystemAlertWindow    = "android.permission.SYSTEM_ALERT_WINDOW"
	GetTasks             = "android.permission.GET_TASKS"
	ChangeWifiState      = "android.permission.CHANGE_WIFI_STATE"
	InstallShortcut      = "com.android.launcher.permission.INSTALL_SHORTCUT"
)

// dangerousPermissions is the set Google labels "dangerous": they guard
// sensitive user data or device capabilities and require runtime consent on
// modern Android versions. The paper reports that Chinese-market apps request
// more of these than Google Play apps.
var dangerousPermissions = map[string]bool{
	ReadPhoneState: true, AccessCoarseLocation: true, AccessFineLocation: true,
	Camera: true, ReadContacts: true, WriteContacts: true, ReadSMS: true,
	SendSMS: true, ReceiveSMS: true, RecordAudio: true, ReadCallLog: true,
	CallPhone: true, ReadCalendar: true, WriteCalendar: true,
	ReadExternalStorage: true, WriteExternalStorage: true, GetAccounts: true,
	BodySensors: true, GetTasks: true, SystemAlertWindow: true,
}

// IsDangerous reports whether the permission is in the dangerous group.
func IsDangerous(perm string) bool { return dangerousPermissions[perm] }

// DangerousPermissions returns the sorted list of dangerous permissions known
// to the map.
func DangerousPermissions() []string {
	out := make([]string, 0, len(dangerousPermissions))
	for p := range dangerousPermissions {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// apiPermissionMap maps framework API methods (class.method) to the
// permission they require. This is the core of the PScout map: "a list of
// 32,445 permission-related APIs" in the original; here a representative
// subset aligned with the synthetic corpus's API vocabulary.
var apiPermissionMap = map[string]string{
	// Telephony / device identifiers -> READ_PHONE_STATE.
	"android.telephony.TelephonyManager.getDeviceId":        ReadPhoneState,
	"android.telephony.TelephonyManager.getImei":            ReadPhoneState,
	"android.telephony.TelephonyManager.getSubscriberId":    ReadPhoneState,
	"android.telephony.TelephonyManager.getSimSerialNumber": ReadPhoneState,
	"android.telephony.TelephonyManager.getLine1Number":     ReadPhoneState,
	"android.telephony.TelephonyManager.listen":             ReadPhoneState,
	"android.telephony.TelephonyManager.getCallState":       ReadPhoneState,
	"android.telephony.TelephonyManager.getNetworkType":     ReadPhoneState,

	// Location -> ACCESS_FINE_LOCATION / ACCESS_COARSE_LOCATION.
	"android.location.LocationManager.getLastKnownLocation":     AccessFineLocation,
	"android.location.LocationManager.requestLocationUpdates":   AccessFineLocation,
	"android.location.LocationManager.getGpsStatus":             AccessFineLocation,
	"android.location.LocationManager.addGpsStatusListener":     AccessFineLocation,
	"android.telephony.TelephonyManager.getCellLocation":        AccessCoarseLocation,
	"android.telephony.TelephonyManager.getNeighboringCellInfo": AccessCoarseLocation,
	"android.net.wifi.WifiManager.getScanResults":               AccessCoarseLocation,

	// Camera and audio.
	"android.hardware.Camera.open":                      Camera,
	"android.hardware.camera2.CameraManager.openCamera": Camera,
	"android.media.MediaRecorder.setAudioSource":        RecordAudio,
	"android.media.AudioRecord.startRecording":          RecordAudio,

	// SMS.
	"android.telephony.SmsManager.sendTextMessage":          SendSMS,
	"android.telephony.SmsManager.sendMultipartTextMessage": SendSMS,
	"android.telephony.SmsManager.sendDataMessage":          SendSMS,

	// Calls.
	"android.telecom.TelecomManager.placeCall": CallPhone,

	// Accounts.
	"android.accounts.AccountManager.getAccounts":       GetAccounts,
	"android.accounts.AccountManager.getAccountsByType": GetAccounts,

	// Network state and connectivity.
	"java.net.URL.openConnection":                           Internet,
	"java.net.HttpURLConnection.connect":                    Internet,
	"java.net.Socket.connect":                               Internet,
	"android.webkit.WebView.loadUrl":                        Internet,
	"org.apache.http.impl.client.DefaultHttpClient.execute": Internet,
	"android.net.ConnectivityManager.getActiveNetworkInfo":  AccessNetworkState,
	"android.net.ConnectivityManager.getNetworkInfo":        AccessNetworkState,
	"android.net.wifi.WifiManager.getConnectionInfo":        AccessWifiState,
	"android.net.wifi.WifiManager.getWifiState":             AccessWifiState,
	"android.net.wifi.WifiManager.setWifiEnabled":           ChangeWifiState,
	"android.bluetooth.BluetoothAdapter.getDefaultAdapter":  Bluetooth,
	"android.bluetooth.BluetoothAdapter.enable":             Bluetooth,
	"android.nfc.NfcAdapter.getDefaultAdapter":              NFC,

	// Storage.
	"android.os.Environment.getExternalStorageDirectory": WriteExternalStorage,
	"android.media.MediaStore.Images.Media.insertImage":  WriteExternalStorage,

	// System services.
	"android.os.Vibrator.vibrate":                     Vibrate,
	"android.os.PowerManager.WakeLock.acquire":        WakeLock,
	"android.app.ActivityManager.getRunningTasks":     GetTasks,
	"android.app.ActivityManager.getRecentTasks":      GetTasks,
	"android.view.WindowManager.addView":              SystemAlertWindow,
	"android.hardware.SensorManager.registerListener": BodySensors,
}

// intentPermissionMap maps protected intent actions to the permission needed
// to send or receive them ("97 permission-related Intents" in PScout).
var intentPermissionMap = map[string]string{
	"android.intent.action.CALL":                   CallPhone,
	"android.intent.action.BOOT_COMPLETED":         ReceiveBootCompleted,
	"android.provider.Telephony.SMS_RECEIVED":      ReceiveSMS,
	"android.intent.action.NEW_OUTGOING_CALL":      ReadPhoneState,
	"android.intent.action.PHONE_STATE":            ReadPhoneState,
	"com.android.launcher.action.INSTALL_SHORTCUT": InstallShortcut,
}

// uriPermissionMap maps content-provider URI prefixes to the permission
// required to query them ("78 Content Provider URI Strings").
var uriPermissionMap = map[string]string{
	"content://com.android.contacts": ReadContacts,
	"content://contacts":             ReadContacts,
	"content://sms":                  ReadSMS,
	"content://mms-sms":              ReadSMS,
	"content://call_log":             ReadCallLog,
	"content://com.android.calendar": ReadCalendar,
	"content://calendar":             ReadCalendar,
	"content://browser/bookmarks":    "com.android.browser.permission.READ_HISTORY_BOOKMARKS",
	"content://media/external":       ReadExternalStorage,
	"content://downloads":            "android.permission.ACCESS_DOWNLOAD_MANAGER",
}

// Map is a queryable permission map. The zero value is not usable; call
// DefaultMap (the built-in PScout-style map) or NewMap to build one.
type Map struct {
	api    map[string]string
	intent map[string]string
	uri    map[string]string
}

// DefaultMap returns the built-in permission map.
func DefaultMap() *Map {
	return &Map{api: apiPermissionMap, intent: intentPermissionMap, uri: uriPermissionMap}
}

// NewMap builds a custom permission map (used by tests and by ablation
// benches that degrade the map).
func NewMap(api, intent, uri map[string]string) *Map {
	if api == nil {
		api = map[string]string{}
	}
	if intent == nil {
		intent = map[string]string{}
	}
	if uri == nil {
		uri = map[string]string{}
	}
	return &Map{api: api, intent: intent, uri: uri}
}

// PermissionForAPI returns the permission required by the given framework API
// call, if any.
func (m *Map) PermissionForAPI(call string) (string, bool) {
	p, ok := m.api[call]
	return p, ok
}

// PermissionForIntent returns the permission tied to the given intent action,
// if any.
func (m *Map) PermissionForIntent(action string) (string, bool) {
	p, ok := m.intent[action]
	return p, ok
}

// PermissionForURI returns the permission needed to access the given content
// URI, matching by longest registered prefix.
func (m *Map) PermissionForURI(uri string) (string, bool) {
	best := ""
	perm := ""
	for prefix, p := range m.uri {
		if len(prefix) > len(best) && hasPrefix(uri, prefix) {
			best = prefix
			perm = p
		}
	}
	return perm, best != ""
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// MappedPermissions returns the sorted set of permissions that appear
// anywhere in the map. The over-privilege analysis only judges permissions it
// can observe through the map; unmapped permissions are ignored rather than
// counted as unused.
func (m *Map) MappedPermissions() []string {
	set := map[string]bool{}
	for _, p := range m.api {
		set[p] = true
	}
	for _, p := range m.intent {
		set[p] = true
	}
	for _, p := range m.uri {
		set[p] = true
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// APIsForPermission returns the framework APIs mapped to the given
// permission, sorted. The synthetic generator uses this to emit code that
// genuinely uses a permission.
func (m *Map) APIsForPermission(perm string) []string {
	var out []string
	for api, p := range m.api {
		if p == perm {
			out = append(out, api)
		}
	}
	sort.Strings(out)
	return out
}

// Size returns the number of API, intent and URI entries in the map.
func (m *Map) Size() (apis, intents, uris int) {
	return len(m.api), len(m.intent), len(m.uri)
}
