package permissions

import (
	"sort"

	"marketscope/internal/dex"
	"marketscope/internal/manifest"
)

// Usage is the result of the permission-gap analysis for one app.
type Usage struct {
	// Requested is the set of permissions declared in the manifest that the
	// map knows about (unmapped permissions are excluded from judgement).
	Requested []string
	// Used is the subset of mapped permissions reachable from the app's
	// code through API calls, intents or content URIs.
	Used []string
	// Unused is Requested minus Used: the over-privileged permissions.
	Unused []string
	// Missing is Used minus Requested: permissions the code appears to need
	// but the manifest does not declare (under-privilege; such apps would
	// crash at runtime, so a high count usually indicates dead library
	// code).
	Missing []string
}

// OverPrivilegedCount returns the number of requested-but-unused permissions.
func (u *Usage) OverPrivilegedCount() int { return len(u.Unused) }

// IsOverPrivileged reports whether the app requests at least one permission
// it never uses.
func (u *Usage) IsOverPrivileged() bool { return len(u.Unused) > 0 }

// UnusedDangerous returns the unused permissions that are in the dangerous
// group, the subset the paper highlights (READ_PHONE_STATE, location, CAMERA).
func (u *Usage) UnusedDangerous() []string {
	var out []string
	for _, p := range u.Unused {
		if IsDangerous(p) {
			out = append(out, p)
		}
	}
	return out
}

// Analyzer computes permission usage from parsed app artifacts.
type Analyzer struct {
	pmap *Map
}

// NewAnalyzer returns an Analyzer over the given permission map. A nil map
// uses the built-in PScout-style map.
func NewAnalyzer(pmap *Map) *Analyzer {
	if pmap == nil {
		pmap = DefaultMap()
	}
	return &Analyzer{pmap: pmap}
}

// UsedPermissions statically determines the set of mapped permissions the
// code uses: every API call, intent action and content URI in the dex file is
// looked up in the permission map.
func (a *Analyzer) UsedPermissions(code *dex.File) []string {
	used := map[string]bool{}
	for call := range code.APICallCounts() {
		if p, ok := a.pmap.PermissionForAPI(call); ok {
			used[p] = true
		}
	}
	for action := range code.IntentActionCounts() {
		if p, ok := a.pmap.PermissionForIntent(action); ok {
			used[p] = true
		}
	}
	for uri := range code.ContentURICounts() {
		if p, ok := a.pmap.PermissionForURI(uri); ok {
			used[p] = true
		}
	}
	return sortedKeys(used)
}

// Analyze compares the permissions requested in the manifest with those used
// by the code and returns the full usage breakdown.
func (a *Analyzer) Analyze(m *manifest.Manifest, code *dex.File) *Usage {
	mapped := map[string]bool{}
	for _, p := range a.pmap.MappedPermissions() {
		mapped[p] = true
	}

	requested := map[string]bool{}
	for _, p := range m.Permissions {
		if mapped[p] {
			requested[p] = true
		}
	}
	usedList := a.UsedPermissions(code)
	used := map[string]bool{}
	for _, p := range usedList {
		used[p] = true
	}

	unused := map[string]bool{}
	for p := range requested {
		if !used[p] {
			unused[p] = true
		}
	}
	missing := map[string]bool{}
	for p := range used {
		if !requested[p] {
			missing[p] = true
		}
	}
	return &Usage{
		Requested: sortedKeys(requested),
		Used:      usedList,
		Unused:    sortedKeys(unused),
		Missing:   sortedKeys(missing),
	}
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
