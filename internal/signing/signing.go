// Package signing implements the developer-key and APK-signature model used
// throughout the study.
//
// Android apps must be signed with a developer key before release. The paper
// uses the signing certificate, extracted with ApkSigner, as the ground truth
// for developer identity: it "cannot be spoofed or modified by malicious
// actors", which is why signature mismatches on the same package name are
// treated as cloned (repackaged) apps.
//
// We use Ed25519 keys. A Developer owns a key pair; signing an APK produces a
// signature block containing the certificate (public key), the certificate's
// SHA-256 fingerprint and a signature over the content digest of the archive.
// Verification recomputes the content digest and checks the signature, which
// is exactly what lets the clone detector trust extracted signatures.
package signing

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
)

// Fingerprint is the SHA-256 digest of a developer certificate (public key).
// It is the developer identity used across the whole pipeline.
type Fingerprint [32]byte

// String returns the fingerprint as lower-case hex, the format usually shown
// by APK analysis tools.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Short returns the first 12 hex characters, convenient for logs and tables.
func (f Fingerprint) Short() string { return hex.EncodeToString(f[:6]) }

// ParseFingerprint parses a 64-character hex fingerprint.
func ParseFingerprint(s string) (Fingerprint, error) {
	var f Fingerprint
	b, err := hex.DecodeString(s)
	if err != nil {
		return f, fmt.Errorf("signing: invalid fingerprint %q: %w", s, err)
	}
	if len(b) != len(f) {
		return f, fmt.Errorf("signing: fingerprint must be %d bytes, got %d", len(f), len(b))
	}
	copy(f[:], b)
	return f, nil
}

// Developer is an app developer identity: a display name and an Ed25519 key
// pair. The same developer may use slightly different display names across
// markets (the paper notes Chinese vs English name variants); the fingerprint
// is what identifies them.
type Developer struct {
	Name    string
	priv    ed25519.PrivateKey
	pub     ed25519.PublicKey
	fingerp Fingerprint
}

// NewDeveloper derives a deterministic developer identity from a seed. The
// synthetic ecosystem generator uses sequential seeds so the corpus is
// reproducible; uniqueness of identities follows from uniqueness of seeds.
func NewDeveloper(name string, seed uint64) *Developer {
	var seedBytes [ed25519.SeedSize]byte
	binary.LittleEndian.PutUint64(seedBytes[:8], seed)
	binary.LittleEndian.PutUint64(seedBytes[8:16], seed^0x9e3779b97f4a7c15)
	binary.LittleEndian.PutUint64(seedBytes[16:24], seed*0xbf58476d1ce4e5b9+1)
	binary.LittleEndian.PutUint64(seedBytes[24:32], ^seed)
	priv := ed25519.NewKeyFromSeed(seedBytes[:])
	pub := priv.Public().(ed25519.PublicKey)
	return &Developer{
		Name:    name,
		priv:    priv,
		pub:     pub,
		fingerp: sha256.Sum256(pub),
	}
}

// Fingerprint returns the developer's certificate fingerprint.
func (d *Developer) Fingerprint() Fingerprint { return d.fingerp }

// Certificate returns the developer's public certificate bytes (the raw
// Ed25519 public key).
func (d *Developer) Certificate() []byte {
	return append([]byte(nil), d.pub...)
}

// Sign produces a signature block over the given content digest.
func (d *Developer) Sign(contentDigest [32]byte) *Block {
	sig := ed25519.Sign(d.priv, contentDigest[:])
	return &Block{
		Certificate:   d.Certificate(),
		Fingerprint:   d.fingerp,
		Signature:     sig,
		ContentDigest: contentDigest,
	}
}

// Block is the signature block stored inside an APK's META-INF directory.
type Block struct {
	Certificate   []byte
	Fingerprint   Fingerprint
	Signature     []byte
	ContentDigest [32]byte
}

// Signature block encoding errors.
var (
	ErrBlockTruncated  = errors.New("signing: truncated signature block")
	ErrBadCertificate  = errors.New("signing: certificate does not match fingerprint")
	ErrBadSignature    = errors.New("signing: signature verification failed")
	ErrDigestMismatch  = errors.New("signing: content digest mismatch")
	ErrWrongCertLength = errors.New("signing: unexpected certificate length")
)

const blockMagic = "SIGB"

// Encode serializes the block to bytes:
//
//	magic "SIGB" | certLen u16 | cert | fingerprint 32 | sigLen u16 | sig | digest 32
func (b *Block) Encode() []byte {
	out := make([]byte, 0, 4+2+len(b.Certificate)+32+2+len(b.Signature)+32)
	out = append(out, blockMagic...)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(b.Certificate)))
	out = append(out, b.Certificate...)
	out = append(out, b.Fingerprint[:]...)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(b.Signature)))
	out = append(out, b.Signature...)
	out = append(out, b.ContentDigest[:]...)
	return out
}

// DecodeBlock parses a signature block.
func DecodeBlock(data []byte) (*Block, error) {
	if len(data) < 4 || string(data[:4]) != blockMagic {
		return nil, fmt.Errorf("%w: missing magic", ErrBlockTruncated)
	}
	pos := 4
	need := func(n int) ([]byte, error) {
		if pos+n > len(data) {
			return nil, fmt.Errorf("%w: need %d bytes at offset %d", ErrBlockTruncated, n, pos)
		}
		b := data[pos : pos+n]
		pos += n
		return b, nil
	}
	certLenB, err := need(2)
	if err != nil {
		return nil, err
	}
	certLen := int(binary.LittleEndian.Uint16(certLenB))
	cert, err := need(certLen)
	if err != nil {
		return nil, err
	}
	fpB, err := need(32)
	if err != nil {
		return nil, err
	}
	sigLenB, err := need(2)
	if err != nil {
		return nil, err
	}
	sigLen := int(binary.LittleEndian.Uint16(sigLenB))
	sig, err := need(sigLen)
	if err != nil {
		return nil, err
	}
	digB, err := need(32)
	if err != nil {
		return nil, err
	}
	if pos != len(data) {
		return nil, fmt.Errorf("signing: %d trailing bytes in signature block", len(data)-pos)
	}
	b := &Block{
		Certificate: append([]byte(nil), cert...),
		Signature:   append([]byte(nil), sig...),
	}
	copy(b.Fingerprint[:], fpB)
	copy(b.ContentDigest[:], digB)
	return b, nil
}

// Verify checks the internal consistency of the block (certificate matches
// fingerprint, signature valid) against the expected content digest.
func (b *Block) Verify(contentDigest [32]byte) error {
	if len(b.Certificate) != ed25519.PublicKeySize {
		return fmt.Errorf("%w: %d", ErrWrongCertLength, len(b.Certificate))
	}
	if sha256.Sum256(b.Certificate) != b.Fingerprint {
		return ErrBadCertificate
	}
	if b.ContentDigest != contentDigest {
		return ErrDigestMismatch
	}
	if !ed25519.Verify(ed25519.PublicKey(b.Certificate), contentDigest[:], b.Signature) {
		return ErrBadSignature
	}
	return nil
}

// SameSigner reports whether two blocks were produced by the same developer
// key. Clone detection treats same package name + different signer as a
// signature-based clone.
func SameSigner(a, b *Block) bool {
	if a == nil || b == nil {
		return false
	}
	return a.Fingerprint == b.Fingerprint
}
