package signing

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"testing"
	"testing/quick"
)

func TestNewDeveloperDeterministic(t *testing.T) {
	a := NewDeveloper("Acme", 7)
	b := NewDeveloper("Acme", 7)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("same seed produced different fingerprints")
	}
	c := NewDeveloper("Acme", 8)
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different seeds produced identical fingerprints")
	}
}

func TestDeveloperNameDoesNotAffectIdentity(t *testing.T) {
	// The paper observes the same signer using Chinese vs English display
	// names across markets; identity is the certificate, not the name.
	a := NewDeveloper("Tencent", 99)
	b := NewDeveloper("腾讯", 99)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("display name changed the key identity")
	}
}

func TestSignAndVerify(t *testing.T) {
	dev := NewDeveloper("dev", 1)
	digest := sha256.Sum256([]byte("apk content"))
	block := dev.Sign(digest)
	if err := block.Verify(digest); err != nil {
		t.Fatalf("Verify failed: %v", err)
	}
	if block.Fingerprint != dev.Fingerprint() {
		t.Error("block fingerprint differs from developer fingerprint")
	}
}

func TestVerifyRejectsWrongDigest(t *testing.T) {
	dev := NewDeveloper("dev", 2)
	digest := sha256.Sum256([]byte("original"))
	block := dev.Sign(digest)
	other := sha256.Sum256([]byte("tampered"))
	if err := block.Verify(other); !errors.Is(err, ErrDigestMismatch) {
		t.Errorf("want ErrDigestMismatch, got %v", err)
	}
}

func TestVerifyRejectsTamperedSignature(t *testing.T) {
	dev := NewDeveloper("dev", 3)
	digest := sha256.Sum256([]byte("content"))
	block := dev.Sign(digest)
	block.Signature[0] ^= 0xFF
	if err := block.Verify(digest); !errors.Is(err, ErrBadSignature) {
		t.Errorf("want ErrBadSignature, got %v", err)
	}
}

func TestVerifyRejectsSwappedCertificate(t *testing.T) {
	devA := NewDeveloper("a", 4)
	devB := NewDeveloper("b", 5)
	digest := sha256.Sum256([]byte("content"))
	block := devA.Sign(digest)
	// An attacker replacing the certificate without updating the
	// fingerprint must be detected.
	block.Certificate = devB.Certificate()
	if err := block.Verify(digest); !errors.Is(err, ErrBadCertificate) {
		t.Errorf("want ErrBadCertificate, got %v", err)
	}
	// Replacing both certificate and fingerprint still fails because the
	// signature was not produced by that key.
	block.Fingerprint = devB.Fingerprint()
	if err := block.Verify(digest); !errors.Is(err, ErrBadSignature) {
		t.Errorf("want ErrBadSignature, got %v", err)
	}
}

func TestVerifyRejectsBadCertLength(t *testing.T) {
	dev := NewDeveloper("dev", 6)
	digest := sha256.Sum256([]byte("x"))
	block := dev.Sign(digest)
	block.Certificate = block.Certificate[:10]
	if err := block.Verify(digest); !errors.Is(err, ErrWrongCertLength) {
		t.Errorf("want ErrWrongCertLength, got %v", err)
	}
}

func TestBlockEncodeDecodeRoundTrip(t *testing.T) {
	dev := NewDeveloper("dev", 7)
	digest := sha256.Sum256([]byte("round trip"))
	block := dev.Sign(digest)
	data := block.Encode()
	got, err := DecodeBlock(data)
	if err != nil {
		t.Fatalf("DecodeBlock: %v", err)
	}
	if !bytes.Equal(got.Certificate, block.Certificate) ||
		!bytes.Equal(got.Signature, block.Signature) ||
		got.Fingerprint != block.Fingerprint ||
		got.ContentDigest != block.ContentDigest {
		t.Error("round trip mismatch")
	}
	if err := got.Verify(digest); err != nil {
		t.Errorf("decoded block does not verify: %v", err)
	}
}

func TestDecodeBlockRejectsTruncation(t *testing.T) {
	dev := NewDeveloper("dev", 8)
	data := dev.Sign(sha256.Sum256([]byte("z"))).Encode()
	for n := 0; n < len(data); n++ {
		if _, err := DecodeBlock(data[:n]); err == nil {
			t.Fatalf("DecodeBlock accepted %d/%d-byte truncation", n, len(data))
		}
	}
	if _, err := DecodeBlock(append(data, 0x00)); err == nil {
		t.Error("DecodeBlock accepted trailing bytes")
	}
}

func TestSameSigner(t *testing.T) {
	devA := NewDeveloper("a", 10)
	devB := NewDeveloper("b", 11)
	digest := sha256.Sum256([]byte("c"))
	a1 := devA.Sign(digest)
	a2 := devA.Sign(sha256.Sum256([]byte("d")))
	b1 := devB.Sign(digest)
	if !SameSigner(a1, a2) {
		t.Error("same developer not recognized")
	}
	if SameSigner(a1, b1) {
		t.Error("different developers reported as same signer")
	}
	if SameSigner(nil, a1) || SameSigner(a1, nil) {
		t.Error("nil blocks should never be the same signer")
	}
}

func TestFingerprintStringAndParse(t *testing.T) {
	dev := NewDeveloper("dev", 12)
	fp := dev.Fingerprint()
	s := fp.String()
	if len(s) != 64 {
		t.Fatalf("fingerprint string length %d, want 64", len(s))
	}
	parsed, err := ParseFingerprint(s)
	if err != nil {
		t.Fatalf("ParseFingerprint: %v", err)
	}
	if parsed != fp {
		t.Error("ParseFingerprint round trip mismatch")
	}
	if len(fp.Short()) != 12 {
		t.Errorf("Short() length = %d, want 12", len(fp.Short()))
	}
	if _, err := ParseFingerprint("zz"); err == nil {
		t.Error("ParseFingerprint accepted non-hex")
	}
	if _, err := ParseFingerprint("abcd"); err == nil {
		t.Error("ParseFingerprint accepted short input")
	}
}

func TestCertificateCopy(t *testing.T) {
	dev := NewDeveloper("dev", 13)
	cert := dev.Certificate()
	cert[0] ^= 0xFF
	if bytes.Equal(cert, dev.Certificate()) {
		t.Error("Certificate() exposes internal key material")
	}
}

func TestSignVerifyProperty(t *testing.T) {
	f := func(seed uint64, content []byte) bool {
		dev := NewDeveloper("p", seed)
		digest := sha256.Sum256(content)
		block := dev.Sign(digest)
		if err := block.Verify(digest); err != nil {
			return false
		}
		decoded, err := DecodeBlock(block.Encode())
		if err != nil {
			return false
		}
		return decoded.Verify(digest) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSign(b *testing.B) {
	dev := NewDeveloper("bench", 1)
	digest := sha256.Sum256([]byte("content"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dev.Sign(digest)
	}
}

func BenchmarkVerify(b *testing.B) {
	dev := NewDeveloper("bench", 1)
	digest := sha256.Sum256([]byte("content"))
	block := dev.Sign(digest)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := block.Verify(digest); err != nil {
			b.Fatal(err)
		}
	}
}
