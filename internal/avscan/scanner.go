package avscan

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"marketscope/internal/dex"
)

// Evidence is what the payload detector finds in an app's code for one
// family.
type Evidence struct {
	Family Family
	// PrefixMatch reports that classes under the family's payload prefix
	// are present.
	PrefixMatch bool
	// MarkerMatch reports that the family's unique entry-point call is
	// invoked somewhere in the code (survives package renaming).
	MarkerMatch bool
	// APIMatches is how many of the family's signature APIs the app calls.
	APIMatches int
}

// Strong reports whether the evidence is strong enough for engines to act on:
// the payload package is present, or the family's unique marker call appears.
// Signature APIs alone are deliberately insufficient — ordinary apps and ad
// SDKs call the same framework APIs, and treating those as malware would
// flag essentially the whole corpus.
func (e Evidence) Strong() bool {
	return e.PrefixMatch || e.MarkerMatch
}

// FindEvidence scans the code for every family's indicators.
func FindEvidence(code *dex.File) []Evidence {
	apiCounts := code.APICallCounts()
	var out []Evidence
	for _, fam := range Families() {
		e := Evidence{Family: fam}
		if len(code.ClassesUnderPrefix(fam.PayloadPrefix)) > 0 {
			e.PrefixMatch = true
		}
		if fam.MarkerAPI != "" && apiCounts[fam.MarkerAPI] > 0 {
			e.MarkerMatch = true
		}
		for _, api := range fam.SignatureAPIs {
			if apiCounts[api] > 0 {
				e.APIMatches++
			}
		}
		if e.PrefixMatch || e.MarkerMatch {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Family.Name < out[j].Family.Name })
	return out
}

// Engine is one simulated anti-virus product.
type Engine struct {
	Name string
	// detectionRate maps family name -> probability of flagging a sample
	// with strong evidence for that family.
	detectionRate map[string]float64
	// falsePositiveRate is the probability of flagging a benign sample.
	falsePositiveRate float64
	// labelTemplate renders a vendor-specific label for a family.
	labelTemplate string
}

// labelTemplates are the vendor label formats observed in the wild; %s is
// replaced by the family token, capitalization varies per vendor.
var labelTemplates = []string{
	"Android.%s.A",
	"Adware/%s",
	"Trojan.AndroidOS.%s.a",
	"AndroidOS_%s.HRX",
	"%s [PUP]",
	"Artemis!%s",
	"A.gray.%s.b",
	"Android/%s.C potentially unwanted",
	"Riskware.%s",
	"PUA.AndroidOS.%s",
}

// Detection is one engine's verdict on one sample.
type Detection struct {
	Engine string
	Label  string
}

// Report is the aggregated scan result for one sample, the analogue of a
// VirusTotal report.
type Report struct {
	SHA256 string
	// Positives is the AV-rank: how many engines flagged the sample.
	Positives int
	// Total is the number of engines consulted.
	Total      int
	Detections []Detection
	// Family is the AVClass-style plurality family, or "" when the sample
	// is clean or no family token wins.
	Family string
}

// Flagged reports whether the sample's AV-rank meets the given threshold.
// The paper uses >=1, >=10 and >=20 (Table 4), with 10 as the robust choice.
func (r *Report) Flagged(threshold int) bool { return r.Positives >= threshold }

// Scanner is a deterministic multi-engine scanner. Once built it is
// read-only: Scan may be called from any number of enrichment workers
// concurrently (every verdict is a pure function of the seed, the engine
// pool and the sample).
type Scanner struct {
	engines []Engine
	seed    uint64
}

// DefaultEngineCount mirrors VirusTotal's "more than 60 anti-virus engines".
const DefaultEngineCount = 62

// NewScanner builds a scanner with the given number of engines. Engine
// characteristics are a deterministic function of the seed, so the same
// corpus scanned twice yields identical reports.
func NewScanner(seed uint64, numEngines int) *Scanner {
	if numEngines <= 0 {
		numEngines = DefaultEngineCount
	}
	s := &Scanner{seed: seed}
	for i := 0; i < numEngines; i++ {
		name := fmt.Sprintf("AV-%02d", i)
		eng := Engine{
			Name:          name,
			detectionRate: make(map[string]float64, NumFamilies()),
			labelTemplate: labelTemplates[i%len(labelTemplates)],
		}
		// Engines differ in overall quality: detection rates between 0.25
		// and 0.95, false-positive rates between 0.05% and 0.5% (any higher
		// and nearly every clean app would carry at least one detection,
		// which is not what VirusTotal reports look like).
		quality := hashUnit(seed, name, "quality")
		eng.falsePositiveRate = 0.0005 + 0.0045*hashUnit(seed, name, "fp")
		for _, fam := range Families() {
			base := 0.25 + 0.70*quality
			// Per-family variation: some engines simply do not know some
			// families (rate forced to 0 for ~20% of engine/family pairs).
			famRoll := hashUnit(seed, name, "fam:"+fam.Name)
			if famRoll < 0.20 {
				eng.detectionRate[fam.Name] = 0
				continue
			}
			rate := base + 0.25*(famRoll-0.5)
			if fam.Grayware {
				// Grayware is flagged less consistently than trojans.
				rate *= 0.8
			}
			if rate < 0 {
				rate = 0
			}
			if rate > 0.98 {
				rate = 0.98
			}
			eng.detectionRate[fam.Name] = rate
		}
		s.engines = append(s.engines, eng)
	}
	return s
}

// NumEngines returns the engine pool size.
func (s *Scanner) NumEngines() int { return len(s.engines) }

// Scan produces the aggregated report for one sample. sha256Hex identifies
// the sample (the per-engine verdicts are deterministic in it) and code is
// the sample's decoded dex payload.
func (s *Scanner) Scan(sha256Hex string, code *dex.File) *Report {
	evidence := FindEvidence(code)
	var strongest *Evidence
	for i := range evidence {
		e := &evidence[i]
		if !e.Strong() {
			continue
		}
		if strongest == nil || betterEvidence(e, strongest) {
			strongest = e
		}
	}

	report := &Report{SHA256: sha256Hex, Total: len(s.engines)}
	for _, eng := range s.engines {
		roll := hashUnit(s.seed, eng.Name, "verdict:"+sha256Hex)
		if strongest != nil {
			rate := eng.detectionRate[strongest.Family.Name]
			if roll < rate {
				report.Detections = append(report.Detections, Detection{
					Engine: eng.Name,
					Label:  fmt.Sprintf(eng.labelTemplate, vendorToken(eng.Name, strongest.Family.Name)),
				})
			}
			continue
		}
		// Benign sample: occasional false positives with generic labels.
		if roll < eng.falsePositiveRate {
			report.Detections = append(report.Detections, Detection{
				Engine: eng.Name,
				Label:  fmt.Sprintf(eng.labelTemplate, "gen"),
			})
		}
	}
	report.Positives = len(report.Detections)
	report.Family = AVClass(labelsOf(report.Detections))
	return report
}

// betterEvidence prefers prefix matches, then marker matches, then more API
// matches, then non-grayware over grayware, and finally lexicographic order
// for stability.
func betterEvidence(a, b *Evidence) bool {
	if a.PrefixMatch != b.PrefixMatch {
		return a.PrefixMatch
	}
	if a.MarkerMatch != b.MarkerMatch {
		return a.MarkerMatch
	}
	if a.APIMatches != b.APIMatches {
		return a.APIMatches > b.APIMatches
	}
	if a.Family.Grayware != b.Family.Grayware {
		return !a.Family.Grayware
	}
	return a.Family.Name < b.Family.Name
}

func labelsOf(dets []Detection) []string {
	out := make([]string, len(dets))
	for i, d := range dets {
		out[i] = d.Label
	}
	return out
}

// vendorToken renders the family name the way a given vendor would: some
// capitalize, some upper-case the first letter, some keep it lower-case.
func vendorToken(engine, family string) string {
	switch hashBucket(engine, 3) {
	case 0:
		return strings.ToUpper(family[:1]) + family[1:]
	case 1:
		return strings.ToUpper(family)
	default:
		return family
	}
}

// hashUnit maps (seed, parts...) to a deterministic value in [0, 1).
func hashUnit(seed uint64, parts ...string) float64 {
	h := sha256.New()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], seed)
	h.Write(b[:])
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	sum := h.Sum(nil)
	v := binary.LittleEndian.Uint64(sum[:8])
	return float64(v>>11) / float64(1<<53)
}

// hashBucket maps a string to one of n buckets deterministically.
func hashBucket(s string, n int) int {
	sum := sha256.Sum256([]byte(s))
	return int(binary.LittleEndian.Uint32(sum[:4]) % uint32(n))
}

// genericTokens are label tokens AVClass discards before voting: platform
// names, type names and noise tokens that do not identify a family.
var genericTokens = map[string]bool{
	"android": true, "androidos": true, "os": true, "trojan": true, "adware": true,
	"pup": true, "pua": true, "riskware": true, "artemis": true, "variant": true,
	"generic": true, "gen": true, "gray": true, "a": true, "b": true, "c": true,
	"hrx": true, "malware": true, "apk": true, "application": true, "potentially": true,
	"unwanted": true, "agent": true,
}

// AVClass implements the plurality-vote family labeling of the AVClass tool:
// every engine label is tokenized, generic tokens are discarded, and the most
// common remaining token (normalized to lower case) wins. It returns "" when
// no meaningful token appears, which matches AVClass's SINGLETON outcome.
func AVClass(labels []string) string {
	votes := map[string]int{}
	for _, label := range labels {
		seen := map[string]bool{}
		for _, token := range tokenize(label) {
			token = strings.ToLower(token)
			if len(token) < 3 || genericTokens[token] {
				continue
			}
			if seen[token] {
				continue
			}
			seen[token] = true
			votes[token]++
		}
	}
	best, bestVotes := "", 0
	names := make([]string, 0, len(votes))
	for tok := range votes {
		names = append(names, tok)
	}
	sort.Strings(names)
	for _, tok := range names {
		if votes[tok] > bestVotes {
			best, bestVotes = tok, votes[tok]
		}
	}
	if bestVotes < 2 {
		// A single engine's idiosyncratic token is not a family consensus.
		return ""
	}
	return best
}

// tokenize splits an AV label on the non-alphanumeric separators vendors use.
func tokenize(label string) []string {
	return strings.FieldsFunc(label, func(r rune) bool {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return false
		default:
			return true
		}
	})
}
