// Package avscan simulates the VirusTotal scan and AVClass family labeling
// the paper uses to measure malware prevalence (Section 6.4, Tables 4 and 5,
// Figure 12).
//
// The real study uploads every APK to VirusTotal and aggregates the verdicts
// of 60+ anti-virus engines into an AV-rank (the number of engines flagging
// the sample). We reproduce that pipeline with a deterministic engine pool:
// each engine recognizes a subset of malware families with its own detection
// rate, produces a vendor-specific label string, and occasionally false
// positives on benign apps — the behaviours that make AV-rank thresholds
// (>=1, >=10, >=20) meaningfully different, as the paper discusses.
//
// Malware presence in an APK is evidenced by the payload the synthetic
// ecosystem injected: classes under a family's payload package prefix and/or
// the family's characteristic API pattern. The detector finds the evidence;
// the engine pool turns it into noisy verdicts.
package avscan

import "sort"

// Family describes one malware (or grayware) family.
type Family struct {
	// Name is the canonical family name as AVClass would output it.
	Name string
	// PayloadPrefix is the package prefix the family's payload classes live
	// under when the sample is not obfuscated.
	PayloadPrefix string
	// MarkerAPI is a call that only this family's payload emits (the
	// command-and-control entry point of the SDK). It is what lets engines
	// recognize a sample whose payload package was renamed by an
	// obfuscator, without flagging benign apps that merely use the same
	// framework APIs.
	MarkerAPI string
	// SignatureAPIs is the set of framework API calls characteristic of the
	// family's behaviour; they add confidence but are too common on their
	// own to be an indicator.
	SignatureAPIs []string
	// Grayware marks aggressive-adware families that many engines flag at
	// lower confidence than outright trojans.
	Grayware bool
}

// builtinFamilies is the family catalog. The names follow Figure 12's top
// malware families; kuguo dominates Chinese markets while airpush/revmob
// dominate Google Play.
var builtinFamilies = []Family{
	{Name: "kuguo", PayloadPrefix: "com.kuguo.sdk", Grayware: true,
		SignatureAPIs: []string{"android.app.NotificationManager.notify", "java.net.URL.openConnection", "android.content.pm.PackageManager.getInstalledPackages"}},
	{Name: "airpush", PayloadPrefix: "com.airpush", Grayware: true,
		SignatureAPIs: []string{"android.app.NotificationManager.notify", "android.webkit.WebView.loadUrl", "android.telephony.TelephonyManager.getDeviceId"}},
	{Name: "smsreg", PayloadPrefix: "com.smsreg.core",
		SignatureAPIs: []string{"android.telephony.SmsManager.sendTextMessage", "android.telephony.TelephonyManager.getSubscriberId"}},
	{Name: "revmob", PayloadPrefix: "com.revmob", Grayware: true,
		SignatureAPIs: []string{"android.webkit.WebView.loadUrl", "android.app.NotificationManager.notify"}},
	{Name: "dowgin", PayloadPrefix: "com.dowgin", Grayware: true,
		SignatureAPIs: []string{"android.content.pm.PackageManager.getInstalledPackages", "android.app.DownloadManager.enqueue"}},
	{Name: "gappusin", PayloadPrefix: "com.gappusin",
		SignatureAPIs: []string{"android.app.DownloadManager.enqueue", "android.content.pm.PackageManager.installPackage"}},
	{Name: "secapk", PayloadPrefix: "com.secapk.wrapper",
		SignatureAPIs: []string{"dalvik.system.DexClassLoader.loadClass", "java.lang.Runtime.exec"}},
	{Name: "youmi", PayloadPrefix: "net.youmi", Grayware: true,
		SignatureAPIs: []string{"android.webkit.WebView.loadUrl", "android.telephony.TelephonyManager.getDeviceId"}},
	{Name: "leadbolt", PayloadPrefix: "com.leadbolt", Grayware: true,
		SignatureAPIs: []string{"android.app.NotificationManager.notify", "android.provider.Browser.addBookmark"}},
	{Name: "adwo", PayloadPrefix: "com.adwo", Grayware: true,
		SignatureAPIs: []string{"android.webkit.WebView.loadUrl", "android.location.LocationManager.getLastKnownLocation"}},
	{Name: "domob", PayloadPrefix: "cn.domob", Grayware: true,
		SignatureAPIs: []string{"android.webkit.WebView.loadUrl", "android.net.wifi.WifiManager.getConnectionInfo"}},
	{Name: "commplat", PayloadPrefix: "com.commplat",
		SignatureAPIs: []string{"android.telephony.SmsManager.sendTextMessage", "android.telephony.SmsManager.sendDataMessage"}},
	{Name: "adend", PayloadPrefix: "com.adend", Grayware: true,
		SignatureAPIs: []string{"android.app.NotificationManager.notify", "android.content.pm.PackageManager.getInstalledPackages"}},
	{Name: "smspay", PayloadPrefix: "com.smspay",
		SignatureAPIs: []string{"android.telephony.SmsManager.sendTextMessage", "android.telephony.SmsManager.sendMultipartTextMessage"}},
	{Name: "jiagu", PayloadPrefix: "com.qihoo.jiagu",
		SignatureAPIs: []string{"dalvik.system.DexClassLoader.loadClass", "java.lang.System.loadLibrary"}},
	{Name: "ramnit", PayloadPrefix: "com.ramnit.dropper",
		SignatureAPIs: []string{"java.lang.Runtime.exec", "java.io.FileOutputStream.write", "android.content.pm.PackageManager.installPackage"}},
	{Name: "mofin", PayloadPrefix: "com.mofin.agent",
		SignatureAPIs: []string{"android.telephony.SmsManager.sendTextMessage", "android.app.admin.DevicePolicyManager.lockNow"}},
	{Name: "eicar", PayloadPrefix: "com.eicar.testfile",
		SignatureAPIs: []string{"eicar.test.signature.StandardAntiVirusTestFile"}},
}

// init derives the default marker API for every catalog entry: the payload's
// entry-point call. Catalog entries may override it explicitly.
func init() {
	for i := range builtinFamilies {
		if builtinFamilies[i].MarkerAPI == "" {
			builtinFamilies[i].MarkerAPI = builtinFamilies[i].PayloadPrefix + ".Core.activate"
		}
	}
}

// Families returns the catalog sorted by name.
func Families() []Family {
	out := append([]Family(nil), builtinFamilies...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FamilyByName looks up a family by canonical name.
func FamilyByName(name string) (Family, bool) {
	for _, f := range builtinFamilies {
		if f.Name == name {
			return f, true
		}
	}
	return Family{}, false
}

// FamilyNames returns the sorted canonical family names.
func FamilyNames() []string {
	out := make([]string, 0, len(builtinFamilies))
	for _, f := range builtinFamilies {
		out = append(out, f.Name)
	}
	sort.Strings(out)
	return out
}

// NumFamilies returns the catalog size.
func NumFamilies() int { return len(builtinFamilies) }
