package avscan

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"marketscope/internal/dex"
)

// benignCode is an ordinary app with no malware indicators.
func benignCode() *dex.File {
	return &dex.File{Classes: []dex.Class{
		{Name: "com.clean.app.Main", Methods: []dex.Method{
			{Name: "onCreate", APICalls: []string{"android.app.Activity.onCreate", "android.widget.TextView.setText"}},
		}},
	}}
}

// infectedCode embeds the named family's payload package, marker call and
// signature APIs.
func infectedCode(familyName string) *dex.File {
	fam, ok := FamilyByName(familyName)
	if !ok {
		panic("unknown family " + familyName)
	}
	f := benignCode()
	f.AddClass(dex.Class{
		Name: fam.PayloadPrefix + ".Payload",
		Methods: []dex.Method{
			{Name: "run", APICalls: append([]string{fam.MarkerAPI}, fam.SignatureAPIs...)},
		},
	})
	return f
}

func TestFamiliesCatalog(t *testing.T) {
	fams := Families()
	if len(fams) < 15 {
		t.Fatalf("family catalog too small: %d", len(fams))
	}
	names := map[string]bool{}
	for _, f := range fams {
		if f.Name == "" || f.PayloadPrefix == "" || len(f.SignatureAPIs) == 0 {
			t.Errorf("incomplete family entry: %+v", f)
		}
		if names[f.Name] {
			t.Errorf("duplicate family %q", f.Name)
		}
		names[f.Name] = true
	}
	for _, must := range []string{"kuguo", "airpush", "revmob", "ramnit", "eicar", "smsreg"} {
		if !names[must] {
			t.Errorf("family %q missing from catalog", must)
		}
	}
	if len(FamilyNames()) != NumFamilies() {
		t.Error("FamilyNames/NumFamilies mismatch")
	}
	if _, ok := FamilyByName("notafamily"); ok {
		t.Error("FamilyByName accepted unknown name")
	}
}

func TestFindEvidence(t *testing.T) {
	if ev := FindEvidence(benignCode()); len(ev) != 0 {
		t.Errorf("benign app produced evidence: %+v", ev)
	}
	ev := FindEvidence(infectedCode("kuguo"))
	found := false
	for _, e := range ev {
		if e.Family.Name == "kuguo" {
			found = true
			if !e.PrefixMatch {
				t.Error("payload prefix not matched")
			}
			if !e.Strong() {
				t.Error("evidence should be strong")
			}
		}
	}
	if !found {
		t.Fatalf("kuguo evidence not found: %+v", ev)
	}
}

func TestFindEvidenceRenamedPayload(t *testing.T) {
	// Payload package renamed: the marker call still identifies the family.
	fam, _ := FamilyByName("smsreg")
	code := benignCode()
	code.AddClass(dex.Class{Name: "a.b.Renamed", Methods: []dex.Method{
		{Name: "r", APICalls: append([]string{fam.MarkerAPI}, fam.SignatureAPIs...)},
	}})
	ev := FindEvidence(code)
	strong := false
	for _, e := range ev {
		if e.Family.Name == "smsreg" && e.Strong() && !e.PrefixMatch {
			strong = true
		}
	}
	if !strong {
		t.Errorf("renamed-payload evidence not recognized: %+v", ev)
	}
}

func TestSignatureAPIsAloneAreNotMalware(t *testing.T) {
	// A benign app calling the same framework APIs as a family's behaviour
	// profile must not be flagged: only the payload prefix or marker call
	// constitutes evidence.
	fam, _ := FamilyByName("airpush")
	code := benignCode()
	code.AddClass(dex.Class{Name: "com.legit.ads.Helper", Methods: []dex.Method{
		{Name: "show", APICalls: fam.SignatureAPIs},
	}})
	for _, e := range FindEvidence(code) {
		if e.Strong() {
			t.Fatalf("benign app with common APIs produced strong evidence: %+v", e)
		}
	}
	s := NewScanner(31, 62)
	if r := s.Scan("common-apis", code); r.Flagged(10) {
		t.Errorf("benign app flagged with AV-rank %d", r.Positives)
	}
}

func TestScannerDeterministic(t *testing.T) {
	s1 := NewScanner(42, 60)
	s2 := NewScanner(42, 60)
	code := infectedCode("airpush")
	r1 := s1.Scan("deadbeef", code)
	r2 := s2.Scan("deadbeef", code)
	if r1.Positives != r2.Positives || r1.Family != r2.Family {
		t.Errorf("scanner not deterministic: %d/%q vs %d/%q", r1.Positives, r1.Family, r2.Positives, r2.Family)
	}
}

func TestScanMalwareVsBenign(t *testing.T) {
	s := NewScanner(7, 62)
	if s.NumEngines() != 62 {
		t.Fatalf("NumEngines = %d", s.NumEngines())
	}
	mal := s.Scan("1111", infectedCode("ramnit"))
	ben := s.Scan("2222", benignCode())
	if mal.Positives < 10 {
		t.Errorf("infected sample AV-rank = %d, want >= 10", mal.Positives)
	}
	if ben.Positives >= 10 {
		t.Errorf("benign sample AV-rank = %d, want < 10", ben.Positives)
	}
	if !mal.Flagged(10) || mal.Flagged(mal.Positives+1) {
		t.Error("Flagged threshold logic wrong")
	}
	if mal.Family != "ramnit" {
		t.Errorf("family = %q, want ramnit", mal.Family)
	}
	if ben.Family != "" && ben.Positives < 2 {
		t.Errorf("benign family should be empty, got %q", ben.Family)
	}
	if mal.Total != 62 || ben.Total != 62 {
		t.Error("Total should equal engine count")
	}
}

func TestScanBenignFalsePositivesAreRare(t *testing.T) {
	s := NewScanner(11, 62)
	flagged10 := 0
	flagged1 := 0
	const n = 200
	for i := 0; i < n; i++ {
		r := s.Scan(fmt.Sprintf("benign-%d", i), benignCode())
		if r.Flagged(1) {
			flagged1++
		}
		if r.Flagged(10) {
			flagged10++
		}
	}
	if flagged10 != 0 {
		t.Errorf("%d/%d benign samples reached AV-rank >= 10", flagged10, n)
	}
	// Some engines should occasionally false-positive at >=1.
	if flagged1 == 0 {
		t.Error("no benign sample was ever flagged by any engine; FP model inactive")
	}
	if flagged1 > n/2 {
		t.Errorf("too many benign samples flagged at >=1: %d/%d", flagged1, n)
	}
}

func TestScanGraywareDetectedLessConsistently(t *testing.T) {
	s := NewScanner(13, 62)
	trojanTotal, graywareTotal := 0, 0
	const n = 60
	for i := 0; i < n; i++ {
		trojanTotal += s.Scan(fmt.Sprintf("t-%d", i), infectedCode("ramnit")).Positives
		graywareTotal += s.Scan(fmt.Sprintf("g-%d", i), infectedCode("kuguo")).Positives
	}
	if graywareTotal >= trojanTotal {
		t.Errorf("grayware AV-rank (%d) should average below trojan (%d)", graywareTotal, trojanTotal)
	}
}

func TestScannerDefaultEngineCount(t *testing.T) {
	s := NewScanner(1, 0)
	if s.NumEngines() != DefaultEngineCount {
		t.Errorf("default engines = %d, want %d", s.NumEngines(), DefaultEngineCount)
	}
}

func TestAVClass(t *testing.T) {
	labels := []string{
		"Android.Kuguo.A",
		"Adware/kuguo",
		"Trojan.AndroidOS.KUGUO.a",
		"Artemis!Kuguo",
		"Riskware.somethingelse",
	}
	if got := AVClass(labels); got != "kuguo" {
		t.Errorf("AVClass = %q, want kuguo", got)
	}
	if got := AVClass(nil); got != "" {
		t.Errorf("AVClass(nil) = %q", got)
	}
	// A single idiosyncratic label is not a consensus.
	if got := AVClass([]string{"Android.Weirdname.A"}); got != "" {
		t.Errorf("single label produced family %q", got)
	}
	// Generic tokens never win.
	if got := AVClass([]string{"Trojan.Generic", "Malware.Generic", "Android.Gen"}); got != "" {
		t.Errorf("generic labels produced family %q", got)
	}
}

func TestVendorLabelsVary(t *testing.T) {
	s := NewScanner(17, 62)
	r := s.Scan("abcd", infectedCode("dowgin"))
	if r.Positives < 5 {
		t.Skip("not enough detections for label diversity check")
	}
	distinct := map[string]bool{}
	for _, d := range r.Detections {
		distinct[d.Label] = true
		if !strings.Contains(strings.ToLower(d.Label), "dowgin") {
			t.Errorf("label %q does not reference the family", d.Label)
		}
	}
	if len(distinct) < 3 {
		t.Errorf("labels insufficiently diverse: %v", distinct)
	}
}

func TestAllFamiliesDetectable(t *testing.T) {
	s := NewScanner(23, 62)
	for _, fam := range Families() {
		r := s.Scan("sample-"+fam.Name, infectedCode(fam.Name))
		if r.Positives < 5 {
			t.Errorf("family %q AV-rank = %d, want >= 5", fam.Name, r.Positives)
		}
		if r.Family != fam.Name {
			t.Errorf("family %q labeled as %q", fam.Name, r.Family)
		}
	}
}

func BenchmarkScanMalware(b *testing.B) {
	s := NewScanner(1, 62)
	code := infectedCode("kuguo")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Scan("bench", code)
	}
}

func BenchmarkScanBenign(b *testing.B) {
	s := NewScanner(1, 62)
	code := benignCode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Scan("bench", code)
	}
}

// TestConcurrentScanIsDeterministic exercises the scanner from many
// goroutines at once — the enrichment worker pool's access pattern — under
// the race detector, and checks every goroutine gets the serial verdicts.
func TestConcurrentScanIsDeterministic(t *testing.T) {
	s := NewScanner(5, 40)
	samples := []struct {
		sha  string
		code *dex.File
	}{
		{"aa01", benignCode()},
		{"bb02", infectedCode("kuguo")},
		{"cc03", infectedCode("airpush")},
		{"dd04", infectedCode("ramnit")},
	}
	want := make([]*Report, len(samples))
	for i, smp := range samples {
		want[i] = s.Scan(smp.sha, smp.code)
	}

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, smp := range samples {
				got := s.Scan(smp.sha, smp.code)
				if !reflect.DeepEqual(got, want[i]) {
					t.Errorf("goroutine %d: sample %s verdict diverges", g, smp.sha)
				}
			}
		}(g)
	}
	wg.Wait()
}
