package durable_test

// The serving-side torture suite for paged snapshots: a store recovered over
// a version-2 snapshot with a page budget must answer every request
// byte-identically to the fully-materialized oracle — or degrade to a clean
// sentinel error — under lazy fetches, budget-forced eviction, concurrent
// pressure, injected fetch faults at recorded failpoints, and epoch swaps.
// The ingest-side crash torture lives in torture_test.go.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"marketscope/internal/durable"
	"marketscope/internal/durable/errfs"
	"marketscope/internal/query"
)

// pagedOpts is storeOpts with paging on: budget < 0 pages without a bound,
// budget > 0 enforces it.
func pagedOpts(t testing.TB, fsys durable.FS, budget int64) durable.Options {
	_, crawlTime := deltas(t)
	opts := storeOpts(fsys, crawlTime)
	opts.PageBudget = budget
	return opts
}

// buildPagedState ingests the full corpus, snapshots it and closes, leaving a
// filesystem whose newest snapshot covers every delta (empty WAL tail) — the
// image every paged-serving test recovers from.
func buildPagedState(t testing.TB) *errfs.MemFS {
	t.Helper()
	ds, crawlTime := deltas(t)
	fs := errfs.New()
	s := openStore(t, storeOpts(fs, crawlTime))
	applyAll(t, s, ds)
	if err := s.WriteSnapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	s.Close()
	return fs
}

// pagedRequest is one request of the serving mix: the narrow scans of the
// battery (everything but the full dump, whose working set is the whole
// corpus) plus the grouped aggregation.
type pagedRequest struct {
	name string
	run  func(query.Source) (*query.Result, error)
}

func pagedRequests() []pagedRequest {
	var reqs []pagedRequest
	for i, q := range batteryQueries()[1:] {
		q := q
		reqs = append(reqs, pagedRequest{
			name: fmt.Sprintf("scan%d", i+1),
			run:  func(src query.Source) (*query.Result, error) { return src.Scan(q) },
		})
	}
	agg := query.Aggregate{
		GroupBy: []string{"market"},
		Aggregates: []query.AggSpec{
			{Op: query.AggCount, As: "n"},
			{Op: query.AggSum, Field: "downloads", As: "dl"},
		},
		Sort: []query.SortKey{{Field: "n", Desc: true}, {Field: "market"}},
	}
	reqs = append(reqs, pagedRequest{
		name: "aggregate",
		run: func(src query.Source) (*query.Result, error) {
			as, ok := src.(query.AggregateSource)
			if !ok {
				return nil, errors.New("source does not aggregate")
			}
			return as.Aggregate(agg)
		},
	})
	return reqs
}

// canonicalBytes is canonical() without the testing.TB, safe to call from
// workload goroutines (same marshalled shape, so the byte comparison holds).
func canonicalBytes(res *query.Result) []byte {
	b, _ := json.Marshal(struct {
		Fields []query.FieldInfo `json:"fields"`
		Rows   [][]any           `json:"rows"`
		Total  int               `json:"total"`
	}{res.Fields, res.Rows, res.Meta.TotalMatched})
	return b
}

// pagedMix runs every paged request against the materialized oracle and
// returns the servable ones with their expected canonical bytes. Requests the
// oracle itself rejects (the battery probes one unknown field deliberately)
// are dropped: requireSameState checks error parity for those, while this
// suite is about answers.
func pagedMix(t testing.TB, upTo uint64) ([]pagedRequest, map[string][]byte) {
	t.Helper()
	oracle := oracleSource(t, upTo)
	var reqs []pagedRequest
	want := make(map[string][]byte)
	for _, r := range pagedRequests() {
		res, err := r.run(oracle)
		if err != nil {
			continue
		}
		reqs = append(reqs, r)
		want[r.name] = canonicalBytes(res)
	}
	if len(reqs) < 3 {
		t.Fatalf("only %d servable requests in the mix", len(reqs))
	}
	return reqs, want
}

// TestPagedServeMatchesOracle is the core equivalence claim: a store serving
// lazily out of a snapshot answers byte-identically to the materialized
// oracle, unbounded and under a budget a quarter of the touched bytes, with
// residency never exceeding the budget and eviction doing real work.
func TestPagedServeMatchesOracle(t *testing.T) {
	fs := buildPagedState(t)
	ds, _ := deltas(t)
	full := uint64(len(ds))
	reqs, want := pagedMix(t, full)

	// Unbounded: the whole battery (including the full dump and the internal
	// row-oracle cross-check) must match, columns paging in on first touch and
	// never out.
	s := openStore(t, pagedOpts(t, fs, -1))
	if st := s.PageStats(); st.ResidentBytes != 0 || st.Fetches != 0 {
		t.Fatalf("columns resident before first query: %+v", st)
	}
	requireSameState(t, sourceOf(s), oracleSource(t, full))
	st := s.PageStats()
	if st.Fetches == 0 || st.ResidentBytes == 0 {
		t.Fatalf("engine did not page: %+v", st)
	}
	if st.Evictions != 0 || st.Quarantines != 0 {
		t.Fatalf("unbounded pool evicted or quarantined: %+v", st)
	}
	s.Close()

	// Measure each request's pinned working set (fresh unbounded store per
	// request: resident afterwards is exactly what the request pinned) and the
	// union the whole mix touches.
	var maxSet int64
	for _, r := range reqs {
		sm := openStore(t, pagedOpts(t, fs, -1))
		if _, err := r.run(sourceOf(sm)); err != nil {
			t.Fatalf("%s unbounded: %v", r.name, err)
		}
		if w := sm.PageStats().ResidentBytes; w > maxSet {
			maxSet = w
		}
		sm.Close()
	}
	su := openStore(t, pagedOpts(t, fs, -1))
	for _, r := range reqs {
		if _, err := r.run(sourceOf(su)); err != nil {
			t.Fatalf("%s unbounded: %v", r.name, err)
		}
	}
	union := su.PageStats().ResidentBytes
	su.Close()

	// Budget: halfway between the largest single working set (so every
	// request is individually servable — the pool cannot evict pinned
	// columns) and the union the mix touches (so cycling through the mix must
	// evict).
	budget := maxSet + (union-maxSet)/2
	if budget >= union {
		t.Fatalf("corpus too small to exercise paging: max working set %d, union %d", maxSet, union)
	}
	t.Logf("paged serve: %d bytes touched, union %d, max working set %d, budget %d",
		st.ResidentBytes, union, maxSet, budget)

	s2 := openStore(t, pagedOpts(t, fs, budget))
	defer s2.Close()
	src := sourceOf(s2)
	for pass := 0; pass < 2; pass++ {
		for _, r := range reqs {
			res, err := r.run(src)
			if err != nil {
				t.Fatalf("pass %d %s under budget: %v", pass, r.name, err)
			}
			if got := canonicalBytes(res); !bytes.Equal(got, want[r.name]) {
				t.Fatalf("pass %d %s diverged:\n got %.300s\nwant %.300s", pass, r.name, got, want[r.name])
			}
			if bs := s2.PageStats(); bs.ResidentBytes > bs.Budget {
				t.Fatalf("resident %d over budget %d after %s", bs.ResidentBytes, bs.Budget, r.name)
			}
		}
	}
	bs := s2.PageStats()
	if bs.Evictions == 0 {
		t.Fatalf("mix over budget %d (union %d) never evicted: %+v", budget, union, bs)
	}
	if bs.Quarantines != 0 {
		t.Fatalf("healthy file quarantined: %+v", bs)
	}
}

// TestPagedBudgetPressure hammers a budget sized to the single largest
// working set with concurrent workers: every answer is byte-identical or a
// clean ErrPageBudget degradation — never a wrong answer, never residency
// over budget — and a serial pass afterwards serves everything again.
func TestPagedBudgetPressure(t *testing.T) {
	fs := buildPagedState(t)
	ds, _ := deltas(t)
	reqs, want := pagedMix(t, uint64(len(ds)))

	var maxSet int64
	for _, r := range reqs {
		sm := openStore(t, pagedOpts(t, fs, -1))
		if _, err := r.run(sourceOf(sm)); err != nil {
			t.Fatalf("%s unbounded: %v", r.name, err)
		}
		if w := sm.PageStats().ResidentBytes; w > maxSet {
			maxSet = w
		}
		sm.Close()
	}

	s := openStore(t, pagedOpts(t, fs, maxSet))
	defer s.Close()
	src := sourceOf(s)

	type outcome struct {
		name string
		body []byte
		err  error
	}
	const workers = 6
	outcomes := make(chan outcome, workers*len(reqs)*3)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for _, r := range reqs {
					res, err := r.run(src)
					o := outcome{name: r.name, err: err}
					if err == nil {
						o.body = canonicalBytes(res)
					}
					outcomes <- o
				}
			}
		}()
	}
	wg.Wait()
	close(outcomes)

	served, degraded := 0, 0
	for o := range outcomes {
		switch {
		case o.err == nil:
			served++
			if !bytes.Equal(o.body, want[o.name]) {
				t.Fatalf("%s under pressure diverged:\n got %.300s\nwant %.300s", o.name, o.body, want[o.name])
			}
		case errors.Is(o.err, query.ErrPageBudget):
			degraded++
		default:
			t.Fatalf("%s under pressure: unexpected error %v", o.name, o.err)
		}
		if bs := s.PageStats(); bs.ResidentBytes > bs.Budget {
			t.Fatalf("resident %d over budget %d", bs.ResidentBytes, bs.Budget)
		}
	}
	if served == 0 {
		t.Fatal("every request degraded; the budget should admit one working set")
	}
	t.Logf("pressure: %d served, %d degraded, stats %+v", served, degraded, s.PageStats())

	// Pressure gone: a serial pass serves every request correctly again, and
	// cycling working sets through the tight budget must have evicted.
	for _, r := range reqs {
		res, err := r.run(src)
		if err != nil {
			t.Fatalf("%s after pressure: %v", r.name, err)
		}
		if got := canonicalBytes(res); !bytes.Equal(got, want[r.name]) {
			t.Fatalf("%s after pressure diverged", r.name)
		}
	}
	if bs := s.PageStats(); bs.Evictions == 0 {
		t.Fatalf("tight budget never evicted: %+v", bs)
	}
}

// servingFailpoints replays the serving workload over an unarmed injector and
// returns the op indices of snapshot reads performed while serving (after
// recovery finished) — the fetch-path failpoints — sampled to a cap.
func servingFailpoints(t *testing.T, fs *errfs.MemFS, reqs []pagedRequest, kinds map[string]bool, cap int) []int {
	t.Helper()
	inj := errfs.NewInjector(fs)
	s := openStore(t, pagedOpts(t, inj, -1))
	lenOpen := len(inj.Log())
	src := sourceOf(s)
	for _, r := range reqs {
		if _, err := r.run(src); err != nil {
			t.Fatalf("recording %s: %v", r.name, err)
		}
	}
	s.Close()
	log := inj.Log()
	var points []int
	for i := lenOpen; i < len(log); i++ {
		if kinds[log[i].Kind] && strings.Contains(log[i].Path, "snap-") {
			points = append(points, i)
		}
	}
	if len(points) == 0 {
		t.Fatalf("no serving-time snapshot %v ops recorded (%d ops, %d during open)", kinds, len(log), lenOpen)
	}
	stride := len(points)/cap + 1
	var sampled []int
	for i := 0; i < len(points); i += stride {
		sampled = append(sampled, points[i])
	}
	return sampled
}

// TestPagedFetchTorture arms a fault at sampled serving-time fetch ops — one
// transient error, one short read, one silent bit flip, and a persistent
// crash — while a concurrent scan+aggregate mix runs. Every answer must be
// byte-identical to the oracle or a clean degradation sentinel; transient
// faults must be absorbed by retries, flips by quarantine+rebuild, and after
// a crash the untouched on-disk image must recover completely.
func TestPagedFetchTorture(t *testing.T) {
	fs := buildPagedState(t)
	ds, _ := deltas(t)
	full := uint64(len(ds))
	reqs, want := pagedMix(t, full)

	cap := 8
	if testing.Short() {
		cap = 3
	}
	// readat failpoints exercise every mode; open failpoints only the modes
	// that can fire on an open.
	readats := servingFailpoints(t, fs, reqs, map[string]bool{"readat": true}, cap)
	opens := servingFailpoints(t, fs, reqs, map[string]bool{"open": true}, 2)

	runMix := func(src query.Source) (served, degraded int) {
		type outcome struct {
			name string
			body []byte
			err  error
		}
		const workers = 4
		outcomes := make(chan outcome, workers*len(reqs))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, r := range reqs {
					res, err := r.run(src)
					o := outcome{name: r.name, err: err}
					if err == nil {
						o.body = canonicalBytes(res)
					}
					outcomes <- o
				}
			}()
		}
		wg.Wait()
		close(outcomes)
		for o := range outcomes {
			switch {
			case o.err == nil:
				served++
				if !bytes.Equal(o.body, want[o.name]) {
					t.Fatalf("%s diverged under fault:\n got %.300s\nwant %.300s", o.name, o.body, want[o.name])
				}
			case errors.Is(o.err, query.ErrPageUnavailable), errors.Is(o.err, query.ErrPageBudget):
				degraded++
			default:
				t.Fatalf("%s under fault: unexpected error %v", o.name, o.err)
			}
		}
		return served, degraded
	}

	rng := rand.New(rand.NewSource(20180601))
	cases := []struct {
		mode   errfs.Mode
		points []int
	}{
		{errfs.ModeErr, append(append([]int(nil), readats...), opens...)},
		{errfs.ModeShortRead, readats},
		{errfs.ModeBitFlip, readats},
		{errfs.ModeCrash, append(append([]int(nil), readats...), opens...)},
	}
	for _, c := range cases {
		for _, f := range c.points {
			label := fmt.Sprintf("%v@%d", c.mode, f)
			inj := errfs.NewInjector(fs)
			inj.Arm(f, c.mode, rng)
			s, err := durable.Open(pagedOpts(t, inj, -1))
			if err != nil {
				t.Fatalf("%s: open failed (failpoint inside recovery?): %v", label, err)
			}
			served, degraded := runMix(sourceOf(s))
			st := s.PageStats()
			hits := inj.Hits()
			switch c.mode {
			case errfs.ModeErr, errfs.ModeShortRead:
				// One transient failure is within the retry budget: nothing
				// may degrade, and a hit must show up as a retry.
				if degraded != 0 {
					t.Fatalf("%s: %d requests degraded on a single transient fault", label, degraded)
				}
				if hits > 0 && st.Retries == 0 {
					t.Fatalf("%s: fault hit but no retry counted: %+v", label, st)
				}
			case errfs.ModeBitFlip:
				// A flipped page read fails its checksum: the column is
				// quarantined and rebuilt from items — still no wrong answer.
				if degraded != 0 {
					t.Fatalf("%s: %d requests degraded on a bit flip", label, degraded)
				}
				if hits > 0 && st.Quarantines == 0 {
					t.Fatalf("%s: flip hit but nothing quarantined: %+v", label, st)
				}
			case errfs.ModeCrash:
				// The disk died mid-serve: requests either answered correctly
				// (columns already resident) or degraded cleanly.
				if served+degraded != 4*len(reqs) {
					t.Fatalf("%s: %d+%d outcomes, want %d", label, served, degraded, 4*len(reqs))
				}
			}
			s.Close() // best effort: close ops fail under ModeCrash

			if c.mode == errfs.ModeCrash {
				// Serving never writes: the on-disk image is untouched, so a
				// process restart over it must recover everything.
				s2 := openStore(t, pagedOpts(t, fs, -1))
				requireSameState(t, sourceOf(s2), oracleSource(t, full))
				s2.Close()
			}
		}
	}
}

// TestPagedEpochSwapRetiresPages recovers a paged engine, serves from it,
// then applies a new delta: the ingest swap must retire the old engine's
// residency (the budget belongs to the new epoch) while answers stay exact.
func TestPagedEpochSwapRetiresPages(t *testing.T) {
	ds, crawlTime := deltas(t)
	fs := errfs.New()
	s := openStore(t, storeOpts(fs, crawlTime))
	applyAll(t, s, ds[:len(ds)-1])
	if err := s.WriteSnapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	s.Close()

	s2 := openStore(t, pagedOpts(t, fs, -1))
	defer s2.Close()
	requireSameState(t, sourceOf(s2), oracleSource(t, uint64(len(ds)-1)))
	st := s2.PageStats()
	if st.ResidentBytes == 0 {
		t.Fatalf("paged engine served nothing: %+v", st)
	}

	if res, err := s2.Apply(ds[len(ds)-1]); err != nil || !res.Applied {
		t.Fatalf("apply over paged engine: %+v %v", res, err)
	}
	after := s2.PageStats()
	if after.ResidentBytes != 0 {
		t.Fatalf("epoch swap left %d bytes resident", after.ResidentBytes)
	}
	if after.Evictions == 0 {
		t.Fatalf("retirement evicted nothing: %+v", after)
	}
	requireSameState(t, sourceOf(s2), oracleSource(t, uint64(len(ds))))
}

// TestStoreSkipsFutureSnapshotGeneration drops a snapshot from a "newer
// build" (MSNAP magic, unknown version) into the directory as the newest
// generation: recovery must skip it without quarantining — renaming a newer
// binary's file would destroy its data — and serve the real state, on both
// the paged and the materialized recovery path.
func TestStoreSkipsFutureSnapshotGeneration(t *testing.T) {
	ds, crawlTime := deltas(t)
	for _, budget := range []int64{0, -1} {
		fs := errfs.New()
		s := openStore(t, storeOpts(fs, crawlTime))
		applyAll(t, s, ds)
		if err := s.WriteSnapshot(); err != nil {
			t.Fatalf("snapshot: %v", err)
		}
		s.Close()

		future := fmt.Sprintf("snap-%016x.snap", len(ds)+7)
		blob := append([]byte("MSNAP009"), bytes.Repeat([]byte{0xee}, 200)...)
		if err := fs.WriteFile("data/"+future, blob); err != nil {
			t.Fatal(err)
		}

		opts := storeOpts(fs, crawlTime)
		opts.PageBudget = budget
		s2 := openStore(t, opts)
		if n := s2.Metrics().SnapshotCorruptQuarantined.Load(); n != 0 {
			t.Fatalf("budget %d: future snapshot quarantined (%d)", budget, n)
		}
		if c := s2.Cursor(); c != uint64(len(ds)) {
			t.Fatalf("budget %d: recovered cursor %d, want %d", budget, c, len(ds))
		}
		requireSameState(t, sourceOf(s2), oracleSource(t, uint64(len(ds))))
		s2.Close()

		names, err := fs.ReadDir("data")
		if err != nil {
			t.Fatal(err)
		}
		if !contains(names, future) {
			t.Fatalf("budget %d: future snapshot gone from %v", budget, names)
		}
		for _, n := range names {
			if strings.HasSuffix(n, ".corrupt") {
				t.Fatalf("budget %d: quarantine file %s appeared", budget, n)
			}
		}
		got, err := fs.ReadFile("data/" + future)
		if err != nil || !bytes.Equal(got, blob) {
			t.Fatalf("budget %d: future snapshot modified (err %v)", budget, err)
		}
	}
}

// TestStoreRefusesFutureWAL patches the WAL magic to a newer version: Open
// must fail with ErrWALVersion — refusing to repair, truncate or rename a
// newer binary's log — and leave the file byte-identical.
func TestStoreRefusesFutureWAL(t *testing.T) {
	ds, crawlTime := deltas(t)
	fs := errfs.New()
	s := openStore(t, storeOpts(fs, crawlTime))
	applyAll(t, s, ds[:3])
	s.Close()

	blob, err := fs.ReadFile("data/wal.log")
	if err != nil {
		t.Fatal(err)
	}
	patched := append([]byte(nil), blob...)
	copy(patched, "MSWAL002")
	if err := fs.WriteFile("data/wal.log", patched); err != nil {
		t.Fatal(err)
	}

	if _, err := durable.Open(storeOpts(fs, crawlTime)); !errors.Is(err, durable.ErrWALVersion) {
		t.Fatalf("open over future WAL: %v, want ErrWALVersion", err)
	}
	after, err := fs.ReadFile("data/wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, patched) {
		t.Fatal("refused WAL was modified")
	}
}
