package durable

import (
	"errors"
	"os"
	"reflect"
	"testing"
	"time"

	"marketscope/internal/appmeta"
	"marketscope/internal/query"
)

func testSnapshotData() *snapshotData {
	return &snapshotData{
		cursor:    7,
		crawlTime: time.Date(2018, 6, 1, 12, 0, 0, 0, time.UTC),
		records: []appmeta.Record{
			testRecord("m1", "com.a"),
			testRecord("m1", "com.b"),
			testRecord("m2", "com.a"),
		},
		blobs: map[appmeta.Key][]byte{
			{Market: "m1", Package: "com.a"}: {0xde, 0xad},
			{Market: "m1", Package: "com.b"}: {},
		},
		columns: []query.ColumnData{
			{
				Name: "downloads", Kind: query.KindInt,
				NullWords: []uint64{0x4}, NullCount: 1,
				Ints:        []int64{10, 20, 0},
				SegmentRows: 4096,
				Zones:       []query.ZoneData{{Rows: 3, Nulls: 1, MinRow: 0, MaxRow: 1}},
			},
			{
				Name: "rating", Kind: query.KindFloat,
				NullWords: []uint64{0}, Floats: []float64{1.5, 2.5, 3.5},
				SegmentRows: 4096,
				Zones:       []query.ZoneData{{Rows: 3, MinRow: 0, MaxRow: 2}},
			},
			{
				Name: "market", Kind: query.KindString,
				NullWords: []uint64{0},
				Dict:      []string{"m1", "m2"}, Codes: []uint32{0, 0, 1},
				SegmentRows: 4096,
				Zones:       []query.ZoneData{{Rows: 3, MinRow: 0, MaxRow: 2}},
				Postings:    [][]int32{{0, 1}, {2}},
			},
			{
				Name: "app_name", Kind: query.KindString,
				NullWords:   []uint64{0},
				Strs:        []string{"a", "b", "c"},
				SegmentRows: 4096,
				Zones:       []query.ZoneData{{Rows: 3, MinRow: 0, MaxRow: 1}},
			},
			{
				Name: "has_ads", Kind: query.KindBool,
				NullWords: []uint64{0}, Bools: []bool{true, false, true},
				SegmentRows: 4096,
				Zones:       []query.ZoneData{{Rows: 3, MinRow: -1, MaxRow: -1}},
			},
			{
				Name: "release_date", Kind: query.KindTime,
				NullWords: []uint64{0x2}, NullCount: 1,
				TimeSec: []int64{100, 0, 300}, TimeNsec: []int32{0, 0, 999}, TimeOff: []int32{0, 0, 28800},
				SegmentRows: 4096,
				Zones:       []query.ZoneData{{Rows: 3, Nulls: 1, MinRow: 0, MaxRow: 2}},
			},
		},
	}
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	want := testSnapshotData()
	got, err := decodeSnapshot(encodeSnapshot(want))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.cursor != want.cursor || !got.crawlTime.Equal(want.crawlTime) {
		t.Fatalf("header mismatch: %d/%v", got.cursor, got.crawlTime)
	}
	if !reflect.DeepEqual(got.records, want.records) {
		t.Fatal("records mismatch")
	}
	if !reflect.DeepEqual(got.blobs, want.blobs) {
		t.Fatalf("blobs mismatch: %v", got.blobs)
	}
	if !reflect.DeepEqual(got.columns, want.columns) {
		t.Fatalf("columns mismatch:\n got %+v\nwant %+v", got.columns, want.columns)
	}
}

// TestSnapshotEveryFlipDetected flips every byte of an encoded snapshot (and
// truncates at every length) and requires a clean decode error each time —
// the per-section checksums and footer leave no undetectable single-byte
// corruption.
func TestSnapshotEveryFlipDetected(t *testing.T) {
	full := encodeSnapshot(testSnapshotData())
	for i := range full {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x5a
		if _, err := decodeSnapshot(mut); err == nil {
			t.Fatalf("flip at byte %d decoded cleanly", i)
		}
	}
	for cut := 0; cut < len(full); cut++ {
		if _, err := decodeSnapshot(full[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
	if _, err := decodeSnapshot(append(full, 0)); err == nil {
		t.Fatal("trailing byte decoded cleanly")
	}
}

func TestSnapshotWriteLoad(t *testing.T) {
	dir := t.TempDir()
	want := testSnapshotData()
	path, err := writeSnapshot(OSFS, dir, want)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if got := snapshotName(want.cursor); path != dir+"/"+got {
		t.Fatalf("path %q, want suffix %q", path, got)
	}
	got, err := loadSnapshotFile(OSFS, path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.cursor != want.cursor || len(got.records) != len(want.records) {
		t.Fatalf("reloaded cursor %d records %d", got.cursor, len(got.records))
	}
	// No temp file left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d entries in dir after write", len(entries))
	}
	// Corrupt on disk -> ErrSnapshotCorrupt.
	blob, _ := os.ReadFile(path)
	blob[len(blob)/2] ^= 0xff
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSnapshotFile(OSFS, path); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("corrupt load err = %v", err)
	}
}

func TestParseSnapshotName(t *testing.T) {
	name := snapshotName(0xabc)
	cursor, ok := parseSnapshotName(name)
	if !ok || cursor != 0xabc {
		t.Fatalf("parse %q = %d, %v", name, cursor, ok)
	}
	for _, bad := range []string{
		"wal.log", "snap-xyz.snap", "snap-0000000000000abc.snap.corrupt",
		"snap-0000000000000abc.snap.tmp", "snap-abc.snap", "",
	} {
		if _, ok := parseSnapshotName(bad); ok {
			t.Fatalf("parsed %q", bad)
		}
	}
}

func FuzzWALReplay(f *testing.F) {
	dir := f.TempDir()
	path := dir + "/fuzz.wal"
	if err := createWAL(OSFS, dir, path, time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)); err != nil {
		f.Fatal(err)
	}
	w, err := openWALAppender(OSFS, path, FsyncOff)
	if err != nil {
		f.Fatal(err)
	}
	_ = w.Append(0, encodeListings(testListings()))
	_ = w.Append(1, nil)
	w.Close()
	seedBytes, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seedBytes)
	f.Add([]byte(walMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		p := dir + "/case.wal"
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		// Mutated bytes must scan to a clean prefix + torn tail or a clean
		// error — never a panic; every surviving record must decode or the
		// scan must stop before it.
		info, err := scanWAL(OSFS, p, func(seq uint64, payload []byte) error {
			_, derr := decodeListings(payload)
			_ = derr // either outcome is fine; it must simply not panic
			return nil
		})
		if err == nil && info.exists && !info.badHeader && info.tornAt >= 0 {
			if info.tornAt < int64(walHeaderLen) {
				t.Fatalf("torn offset %d inside header", info.tornAt)
			}
		}
	})
}

func FuzzSnapshotLoad(f *testing.F) {
	f.Add(encodeSnapshot(testSnapshotData()))
	f.Add(encodeSnapshot(&snapshotData{}))
	f.Add([]byte(snapMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary bytes must decode to a valid snapshot or a clean error —
		// never a panic, never an implausible allocation.
		data2, err := decodeSnapshot(data)
		if err == nil {
			// Whatever decoded must re-encode and decode to the same thing
			// (the format is canonical for valid states).
			if _, err := decodeSnapshot(encodeSnapshot(data2)); err != nil {
				t.Fatalf("re-encode of valid snapshot failed: %v", err)
			}
		}
	})
}
