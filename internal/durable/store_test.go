package durable_test

// Lifecycle and recovery tests for the durable store, all against the errfs
// in-memory filesystem: reopen equivalence, snapshot fallback and quarantine,
// generation pruning, WAL wedging, the weaker in-place WAL corruption
// contract, and the /metrics integration. The adversarial crash-at-every-
// failpoint suite lives in torture_test.go.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"marketscope/internal/analysis"
	"marketscope/internal/crawler"
	"marketscope/internal/durable"
	"marketscope/internal/durable/errfs"
	"marketscope/internal/ingest"
	"marketscope/internal/market"
	"marketscope/internal/query"
	"marketscope/internal/synth"
)

// corpus builds one small synthetic crawl (with APK bytes) shared by every
// test in the package, pre-partitioned into deterministic deltas.
var (
	corpusOnce   sync.Once
	corpusTime   time.Time
	corpusDeltas []ingest.Delta
	corpusErr    error
)

func deltas(t testing.TB) ([]ingest.Delta, time.Time) {
	t.Helper()
	corpusOnce.Do(func() {
		cfg := synth.SmallConfig()
		cfg.NumApps = 60
		cfg.NumDevelopers = 25
		eco, err := synth.Generate(cfg)
		if err != nil {
			corpusErr = err
			return
		}
		stores, err := eco.Populate()
		if err != nil {
			corpusErr = err
			return
		}
		snap, err := crawler.SnapshotFromStores(stores, true, cfg.CrawlDate)
		if err != nil {
			corpusErr = err
			return
		}
		corpusTime = snap.CrawlTime
		records := snap.Records()
		rng := rand.New(rand.NewSource(42))
		rng.Shuffle(len(records), func(i, j int) { records[i], records[j] = records[j], records[i] })
		var seq uint64
		for off := 0; off < len(records); {
			if seq == 2 {
				// One empty batch: the cursor advances with no listings.
				corpusDeltas = append(corpusDeltas, ingest.Delta{Seq: seq})
				seq++
				continue
			}
			size := 8
			if size > len(records)-off {
				size = len(records) - off
			}
			d := ingest.Delta{Seq: seq}
			for _, rec := range records[off : off+size] {
				l := ingest.Listing{Record: rec}
				if data, ok := snap.APK(rec.Key()); ok {
					l.APK = data
				}
				d.Listings = append(d.Listings, l)
			}
			// A duplicate listing inside the batch: skipped on first apply,
			// and must be skipped identically on every replay.
			if seq == 1 {
				d.Listings = append(d.Listings, d.Listings[0])
			}
			corpusDeltas = append(corpusDeltas, d)
			off += size
			seq++
		}
	})
	if corpusErr != nil {
		t.Fatalf("corpus: %v", corpusErr)
	}
	return corpusDeltas, corpusTime
}

func ingestOpts(crawlTime time.Time) ingest.Options {
	return ingest.Options{Enrich: analysis.DefaultEnrichOptions(), CrawlTime: crawlTime}
}

// oracleSource replays deltas[:upTo] through a fresh in-memory ingestor —
// the ground truth any recovered store must be byte-identical to.
var (
	oracleMu    sync.Mutex
	oracleCache = map[uint64]query.Source{}
)

func oracleSource(t testing.TB, upTo uint64) query.Source {
	t.Helper()
	oracleMu.Lock()
	defer oracleMu.Unlock()
	if src, ok := oracleCache[upTo]; ok {
		return src
	}
	ds, crawlTime := deltas(t)
	ing := ingest.New(ingestOpts(crawlTime))
	for _, d := range ds[:upTo] {
		if _, err := ing.Apply(d); err != nil {
			t.Fatalf("oracle apply seq %d: %v", d.Seq, err)
		}
	}
	var src query.Source
	if ing.Dataset() != nil {
		src = ing.Dataset().QuerySource()
	}
	oracleCache[upTo] = src
	return src
}

func canonical(t testing.TB, res *query.Result) []byte {
	t.Helper()
	b, err := json.Marshal(struct {
		Fields []query.FieldInfo `json:"fields"`
		Rows   [][]any           `json:"rows"`
		Total  int               `json:"total"`
	}{res.Fields, res.Rows, res.Meta.TotalMatched})
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return b
}

// batteryQueries is the fixed scan battery recovered state is judged on:
// full dump, dictionary-indexed equality, range + sort, substring, null
// probe on an enrichment field.
func batteryQueries() []query.Query {
	return []query.Query{
		{},
		{Fields: []string{"package", "market"}, Filters: []query.Filter{{Field: "market", Op: query.OpEq, Value: "Tencent Myapp"}}},
		{Fields: []string{"package", "downloads", "rating"},
			Filters: []query.Filter{{Field: "downloads", Op: query.OpGt, Value: 1000}},
			Sort:    []query.SortKey{{Field: "rating", Desc: true}, {Field: "package"}}, Limit: 25},
		{Fields: []string{"package", "app_name"}, Filters: []query.Filter{{Field: "app_name", Op: query.OpContains, Value: "a"}}},
		{Fields: []string{"package", "apk_size_mb"}, Filters: []query.Filter{{Field: "apk_size_mb", Op: query.OpIsNull, Value: false}}},
	}
}

// requireSameState runs the battery on both sources and requires
// byte-identical answers; it also cross-checks got's planned scans against
// its own row-at-a-time oracle, which catches item/column divergence a
// source-to-source comparison could miss.
func requireSameState(t testing.TB, got, want query.Source) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("source presence mismatch: got %v, want %v", got != nil, want != nil)
	}
	if got == nil {
		return
	}
	type oracler interface {
		ScanOracle(query.Query) (*query.Result, error)
	}
	for i, q := range batteryQueries() {
		gr, gerr := got.Scan(q)
		wr, werr := want.Scan(q)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("battery %d: error mismatch got %v want %v", i, gerr, werr)
		}
		if gerr != nil {
			continue
		}
		if g, w := canonical(t, gr), canonical(t, wr); !bytes.Equal(g, w) {
			t.Fatalf("battery %d diverged:\n got %.300s\nwant %.300s", i, g, w)
		}
		if o, ok := got.(oracler); ok {
			or, oerr := o.ScanOracle(q)
			if oerr != nil {
				t.Fatalf("battery %d: oracle scan: %v", i, oerr)
			}
			if g, w := canonical(t, gr), canonical(t, or); !bytes.Equal(g, w) {
				t.Fatalf("battery %d: planned scan disagrees with its own oracle:\n got %.300s\nwant %.300s", i, g, w)
			}
		}
	}
	ga, gok := got.(query.AggregateSource)
	wa, wok := want.(query.AggregateSource)
	if gok != wok {
		t.Fatalf("aggregate support mismatch: got %v want %v", gok, wok)
	}
	if gok {
		agg := query.Aggregate{
			GroupBy: []string{"market"},
			Aggregates: []query.AggSpec{
				{Op: query.AggCount, As: "n"},
				{Op: query.AggSum, Field: "downloads", As: "dl"},
			},
			Sort: []query.SortKey{{Field: "n", Desc: true}, {Field: "market"}},
		}
		gr, gerr := ga.Aggregate(agg)
		wr, werr := wa.Aggregate(agg)
		if gerr != nil || werr != nil {
			t.Fatalf("aggregate errors: got %v want %v", gerr, werr)
		}
		if g, w := canonical(t, gr), canonical(t, wr); !bytes.Equal(g, w) {
			t.Fatalf("aggregate diverged:\n got %.300s\nwant %.300s", g, w)
		}
	}
}

func sourceOf(s *durable.Store) query.Source {
	if s.Dataset() == nil {
		return nil
	}
	return s.Dataset().QuerySource()
}

func storeOpts(fsys durable.FS, crawlTime time.Time) durable.Options {
	return durable.Options{
		FS: fsys, Dir: "data",
		Ingest: ingestOpts(crawlTime),
	}
}

func openStore(t testing.TB, opts durable.Options) *durable.Store {
	t.Helper()
	s, err := durable.Open(opts)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	return s
}

func applyAll(t testing.TB, s *durable.Store, ds []ingest.Delta) {
	t.Helper()
	for _, d := range ds {
		if res, err := s.Apply(d); err != nil || !res.Applied {
			t.Fatalf("apply seq %d: res=%+v err=%v", d.Seq, res, err)
		}
	}
}

func TestStoreEmptyColdStart(t *testing.T) {
	fs := errfs.New()
	_, crawlTime := deltas(t)
	s := openStore(t, storeOpts(fs, crawlTime))
	if s.Cursor() != 0 || s.Dataset() != nil {
		t.Fatalf("fresh store: cursor %d dataset %v", s.Cursor(), s.Dataset())
	}
	if res, err := s.Apply(ingest.Delta{Seq: 0}); err != nil || !res.Applied || res.Cursor != 1 {
		t.Fatalf("empty delta: %+v %v", res, err)
	}
	s.Close()
	s2 := openStore(t, storeOpts(fs, crawlTime))
	defer s2.Close()
	if s2.Cursor() != 1 || s2.Dataset() != nil {
		t.Fatalf("reopened: cursor %d dataset %v", s2.Cursor(), s2.Dataset())
	}
	if s2.Metrics().WALRecordsReplayed.Load() != 1 {
		t.Fatalf("replayed %d records", s2.Metrics().WALRecordsReplayed.Load())
	}
}

func TestStoreReopenMatchesOracle(t *testing.T) {
	ds, crawlTime := deltas(t)
	fs := errfs.New()
	s := openStore(t, storeOpts(fs, crawlTime))
	applyAll(t, s, ds)
	live := sourceOf(s)
	s.Close()

	// WAL-only recovery (no snapshot yet).
	s2 := openStore(t, storeOpts(fs, crawlTime))
	if s2.Cursor() != uint64(len(ds)) {
		t.Fatalf("recovered cursor %d, want %d", s2.Cursor(), len(ds))
	}
	if n := s2.Metrics().WALRecordsReplayed.Load(); n != int64(len(ds)) {
		t.Fatalf("replayed %d records, want %d", n, len(ds))
	}
	requireSameState(t, sourceOf(s2), oracleSource(t, uint64(len(ds))))
	requireSameState(t, sourceOf(s2), live)

	// Snapshot, reopen: columns come from the snapshot, tail is empty.
	if err := s2.WriteSnapshot(); err != nil {
		t.Fatalf("write snapshot: %v", err)
	}
	if g := s2.Metrics().LastSnapshotGeneration.Load(); g != uint64(len(ds)) {
		t.Fatalf("snapshot generation %d", g)
	}
	s2.Close()
	s3 := openStore(t, storeOpts(fs, crawlTime))
	defer s3.Close()
	if n := s3.Metrics().WALRecordsReplayed.Load(); n != 0 {
		t.Fatalf("replayed %d records after snapshot, want 0", n)
	}
	if s3.Metrics().SnapshotLoadSeconds() <= 0 {
		t.Fatal("snapshot load seconds not recorded")
	}
	requireSameState(t, sourceOf(s3), oracleSource(t, uint64(len(ds))))

	// A replayed batch after restart is an acked no-op, never double-applied.
	before := s3.Dataset().NumListings()
	res, err := s3.Apply(ds[len(ds)-1])
	if err != nil || res.Applied || res.Cursor != uint64(len(ds)) {
		t.Fatalf("replay after restart: %+v %v", res, err)
	}
	if s3.Dataset().NumListings() != before {
		t.Fatal("replay after restart grew the dataset")
	}
	// A gapped batch still 409s at the ingest layer's contract.
	if _, err := s3.Apply(ingest.Delta{Seq: uint64(len(ds)) + 3}); !errors.Is(err, ingest.ErrCursorGap) {
		t.Fatalf("gap after restart: %v", err)
	}
}

func TestSnapshotMidStreamThenMoreBatches(t *testing.T) {
	ds, crawlTime := deltas(t)
	fs := errfs.New()
	s := openStore(t, storeOpts(fs, crawlTime))
	half := len(ds) / 2
	applyAll(t, s, ds[:half])
	if err := s.WriteSnapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	applyAll(t, s, ds[half:])
	s.Close()

	s2 := openStore(t, storeOpts(fs, crawlTime))
	defer s2.Close()
	if n := s2.Metrics().WALRecordsReplayed.Load(); n != int64(len(ds)-half) {
		t.Fatalf("tail replayed %d records, want %d", n, len(ds)-half)
	}
	requireSameState(t, sourceOf(s2), oracleSource(t, uint64(len(ds))))
}

func TestSnapshotQuarantineAndFallback(t *testing.T) {
	ds, crawlTime := deltas(t)
	fs := errfs.New()
	s := openStore(t, storeOpts(fs, crawlTime))
	half := len(ds) / 2
	applyAll(t, s, ds[:half])
	if err := s.WriteSnapshot(); err != nil {
		t.Fatalf("snapshot 1: %v", err)
	}
	applyAll(t, s, ds[half:])
	if err := s.WriteSnapshot(); err != nil {
		t.Fatalf("snapshot 2: %v", err)
	}
	s.Close()

	corruptSnap := func(name string) {
		blob, err := fs.ReadFile("data/" + name)
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		blob[len(blob)/3] ^= 0x10
		if err := fs.WriteFile("data/"+name, blob); err != nil {
			t.Fatal(err)
		}
	}
	snapName := func(cursor int) string {
		return fmt.Sprintf("snap-%016x.snap", cursor)
	}

	// Newest snapshot corrupt: quarantined, previous generation + WAL tail
	// recovers the full state.
	corruptSnap(snapName(len(ds)))
	s2 := openStore(t, storeOpts(fs, crawlTime))
	if n := s2.Metrics().SnapshotCorruptQuarantined.Load(); n != 1 {
		t.Fatalf("quarantined %d, want 1", n)
	}
	if g := s2.Metrics().LastSnapshotGeneration.Load(); g != uint64(half) {
		t.Fatalf("recovered from generation %d, want %d", g, half)
	}
	requireSameState(t, sourceOf(s2), oracleSource(t, uint64(len(ds))))
	s2.Close()
	names, err := fs.ReadDir("data")
	if err != nil {
		t.Fatal(err)
	}
	if !contains(names, snapName(len(ds))+".corrupt") {
		t.Fatalf("no quarantine file in %v", names)
	}

	// Both snapshots corrupt: cold WAL rebuild, still byte-identical.
	corruptSnap(snapName(half))
	s3 := openStore(t, storeOpts(fs, crawlTime))
	defer s3.Close()
	if n := s3.Metrics().SnapshotCorruptQuarantined.Load(); n != 1 {
		t.Fatalf("second open quarantined %d, want 1", n)
	}
	if n := s3.Metrics().WALRecordsReplayed.Load(); n != int64(len(ds)) {
		t.Fatalf("cold rebuild replayed %d, want %d", n, len(ds))
	}
	requireSameState(t, sourceOf(s3), oracleSource(t, uint64(len(ds))))
}

func contains(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

func TestSnapshotCadenceAndPruning(t *testing.T) {
	ds, crawlTime := deltas(t)
	fs := errfs.New()
	opts := storeOpts(fs, crawlTime)
	opts.SnapshotEvery = 1 // snapshot after every batch
	s := openStore(t, opts)
	applyAll(t, s, ds)
	if err := s.Err(); err != nil {
		t.Fatalf("cadence snapshot failed: %v", err)
	}
	s.Close()
	names, err := fs.ReadDir("data")
	if err != nil {
		t.Fatal(err)
	}
	snaps := 0
	for _, n := range names {
		if strings.HasSuffix(n, ".snap") {
			snaps++
		}
	}
	if snaps != 2 {
		t.Fatalf("kept %d snapshots (%v), want 2", snaps, names)
	}
	s2 := openStore(t, storeOpts(fs, crawlTime))
	defer s2.Close()
	if n := s2.Metrics().WALRecordsReplayed.Load(); n != 0 {
		t.Fatalf("replayed %d with a current snapshot", n)
	}
	requireSameState(t, sourceOf(s2), oracleSource(t, uint64(len(ds))))
}

func TestStoreWedgesAfterWALError(t *testing.T) {
	ds, crawlTime := deltas(t)
	inj := errfs.NewInjector(errfs.New())
	s := openStore(t, storeOpts(inj, crawlTime))
	applyAll(t, s, ds[:2])
	acked := s.Cursor()

	// Fail the next WAL append (one transient error, filesystem fine after).
	inj.Arm(len(inj.Log()), errfs.ModeErr, nil)
	if _, err := s.Apply(ds[2]); !errors.Is(err, errfs.ErrInjected) {
		t.Fatalf("apply over failed WAL: %v", err)
	}
	if s.Cursor() != acked {
		t.Fatal("failed commit advanced the cursor")
	}
	// The WAL is wedged: even with the fault gone, ingest fails fast...
	if _, err := s.Apply(ds[2]); err == nil || !strings.Contains(err.Error(), "wedged") {
		t.Fatalf("wedged store accepted a batch: %v", err)
	}
	// ...while reads keep serving the last good state.
	requireSameState(t, sourceOf(s), oracleSource(t, acked))
	s.Close()

	// A restart recovers the acked prefix and accepts the batch again.
	s2 := openStore(t, storeOpts(inj.Base, crawlTime))
	defer s2.Close()
	if s2.Cursor() != acked {
		t.Fatalf("recovered cursor %d, want %d", s2.Cursor(), acked)
	}
	applyAll(t, s2, ds[acked:])
	requireSameState(t, sourceOf(s2), oracleSource(t, uint64(len(ds))))
}

// TestWALBitFlipWeakerContract pins the documented weaker guarantee for
// in-place WAL corruption: a flipped bit mid-log reads as a torn tail there,
// so recovery serves a clean prefix (never partial or corrupt state) and the
// truncation is counted.
func TestWALBitFlipWeakerContract(t *testing.T) {
	ds, crawlTime := deltas(t)
	fs := errfs.New()
	s := openStore(t, storeOpts(fs, crawlTime))
	applyAll(t, s, ds)
	s.Close()

	blob, err := fs.ReadFile("data/wal.log")
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x01
	if err := fs.WriteFile("data/wal.log", blob); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, storeOpts(fs, crawlTime))
	defer s2.Close()
	if s2.Metrics().WALTailTruncations.Load() != 1 {
		t.Fatalf("truncations %d, want 1", s2.Metrics().WALTailTruncations.Load())
	}
	c := s2.Cursor()
	if c >= uint64(len(ds)) {
		t.Fatalf("flip mid-log kept cursor %d of %d", c, len(ds))
	}
	requireSameState(t, sourceOf(s2), oracleSource(t, c))
	// The log was repaired in place: ingest resumes from the clean prefix.
	applyAll(t, s2, ds[c:])
	requireSameState(t, sourceOf(s2), oracleSource(t, uint64(len(ds))))
}

// TestDurableMetricsServed asserts the durability gauges ride the market
// server's /metrics endpoint.
func TestDurableMetricsServed(t *testing.T) {
	ds, crawlTime := deltas(t)
	fs := errfs.New()
	s := openStore(t, storeOpts(fs, crawlTime))
	applyAll(t, s, ds[:3])
	if err := s.WriteSnapshot(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openStore(t, storeOpts(fs, crawlTime))
	defer s2.Close()

	srv := market.NewServer(market.NewStore(market.Profile{Name: "analysis"}))
	srv.AttachScan(sourceOf(s2))
	srv.ConfigureServing(market.ServeConfig{})
	s2.Metrics().Register(srv.MetricsRegistry())

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, market.MetricsPath, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	body := rec.Body.String()
	for _, name := range []string{
		"durable_wal_records_replayed",
		"durable_wal_tail_truncations",
		"durable_snapshot_load_seconds",
		"durable_snapshot_corrupt_quarantined",
		"durable_last_snapshot_generation",
	} {
		if !strings.Contains(body, name) {
			t.Fatalf("/metrics missing %s:\n%s", name, body)
		}
	}
	if !strings.Contains(body, fmt.Sprintf("durable_last_snapshot_generation 3")) {
		t.Fatalf("generation gauge wrong:\n%s", body)
	}
}

func TestFsyncPolicies(t *testing.T) {
	ds, crawlTime := deltas(t)
	for _, policy := range []string{"interval", "off"} {
		p, err := durable.ParseFsyncPolicy(policy)
		if err != nil {
			t.Fatal(err)
		}
		fs := errfs.New()
		opts := storeOpts(fs, crawlTime)
		opts.Fsync = p
		opts.FsyncInterval = time.Millisecond
		s := openStore(t, opts)
		applyAll(t, s, ds[:3])
		s.Close() // final sync on close
		s2 := openStore(t, storeOpts(fs, crawlTime))
		if s2.Cursor() != 3 {
			t.Fatalf("%s: recovered cursor %d", policy, s2.Cursor())
		}
		requireSameState(t, sourceOf(s2), oracleSource(t, 3))
		s2.Close()
	}
}
