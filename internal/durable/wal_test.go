package durable

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"marketscope/internal/appmeta"
	"marketscope/internal/ingest"
)

func testRecord(market, pkg string) appmeta.Record {
	return appmeta.Record{
		Market: market, Package: pkg,
		AppName: "App " + pkg, Category: "Tools", DeveloperName: "dev",
		VersionCode: 7, VersionName: "1.0.7",
		Description: "描述 description", Downloads: 12345, Rating: 4.5,
		ReleaseDate: time.Date(2017, 3, 14, 15, 9, 2, 0, time.UTC),
		UpdateDate:  time.Date(2018, 1, 2, 3, 4, 5, 123456789, time.FixedZone("", 8*3600)),
		APKSize:     1 << 20, HasAds: true, HasIAP: false,
	}
}

func testListings() []ingest.Listing {
	return []ingest.Listing{
		{Record: testRecord("m1", "com.a"), APK: []byte{0xde, 0xad, 0xbe, 0xef}},
		{Record: testRecord("m1", "com.b"), APK: []byte{}}, // empty but present
		{Record: testRecord("m2", "com.a")},                // absent
	}
}

func TestListingsCodecRoundTrip(t *testing.T) {
	want := testListings()
	got, err := decodeListings(encodeListings(want))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d listings, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Record != want[i].Record {
			t.Fatalf("listing %d record mismatch:\n got %+v\nwant %+v", i, got[i].Record, want[i].Record)
		}
		if (got[i].APK == nil) != (want[i].APK == nil) || !bytes.Equal(got[i].APK, want[i].APK) {
			t.Fatalf("listing %d APK mismatch: got %v want %v", i, got[i].APK, want[i].APK)
		}
	}
	// Times must round-trip to the exact instant and UTC offset.
	if !got[0].Record.UpdateDate.Equal(want[0].Record.UpdateDate) {
		t.Fatal("update date instant drifted")
	}
	_, gotOff := got[0].Record.UpdateDate.Zone()
	if gotOff != 8*3600 {
		t.Fatalf("update date offset %d, want %d", gotOff, 8*3600)
	}
	// Truncating anywhere must yield an error, never a panic.
	full := encodeListings(want)
	for cut := 0; cut < len(full); cut++ {
		if _, err := decodeListings(full[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
}

func TestWALAppendScanRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, walFileName)
	crawl := time.Date(2018, 6, 1, 0, 0, 0, 0, time.UTC)
	if err := createWAL(OSFS, dir, path, crawl); err != nil {
		t.Fatalf("create: %v", err)
	}
	w, err := openWALAppender(OSFS, path, FsyncAlways)
	if err != nil {
		t.Fatalf("open appender: %v", err)
	}
	payloads := [][]byte{encodeListings(testListings()), {}, []byte("x")}
	for seq, p := range payloads {
		if err := w.Append(uint64(seq), p); err != nil {
			t.Fatalf("append %d: %v", seq, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := w.Append(9, nil); err == nil {
		t.Fatal("append after close succeeded")
	}

	var seqs []uint64
	info, err := scanWAL(OSFS, path, func(seq uint64, payload []byte) error {
		seqs = append(seqs, seq)
		if !bytes.Equal(payload, payloads[seq]) {
			t.Fatalf("seq %d payload mismatch", seq)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if !info.exists || info.badHeader || info.tornAt != -1 {
		t.Fatalf("scan info %+v", info)
	}
	if info.records != 3 || info.lastSeq != 2 || len(seqs) != 3 {
		t.Fatalf("scan saw %d records (last %d)", info.records, info.lastSeq)
	}
	if !info.crawlTime.Equal(crawl) {
		t.Fatalf("crawl time %v, want %v", info.crawlTime, crawl)
	}
}

func TestWALTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, walFileName)
	if err := createWAL(OSFS, dir, path, time.Now()); err != nil {
		t.Fatalf("create: %v", err)
	}
	w, err := openWALAppender(OSFS, path, FsyncAlways)
	if err != nil {
		t.Fatalf("open appender: %v", err)
	}
	for seq := 0; seq < 3; seq++ {
		if err := w.Append(uint64(seq), encodeListings(testListings())); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	w.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	info, _ := scanWAL(OSFS, path, nil)
	if info.records != 3 {
		t.Fatalf("setup: %d records", info.records)
	}

	// Every possible tear inside the third record must scan as 2 intact
	// records plus a torn tail, and repair must truncate to a clean log.
	recLen := (len(full) - walHeaderLen) / 3
	thirdStart := walHeaderLen + 2*recLen
	for cut := thirdStart + 1; cut < len(full); cut += 7 {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		info, err := scanWAL(OSFS, path, nil)
		if err != nil {
			t.Fatalf("scan torn at %d: %v", cut, err)
		}
		if info.records != 2 || info.tornAt != int64(thirdStart) {
			t.Fatalf("torn at %d: records=%d tornAt=%d, want 2 at %d", cut, info.records, info.tornAt, thirdStart)
		}
		repaired, err := repairWAL(OSFS, path, info)
		if err != nil || !repaired {
			t.Fatalf("repair at %d: repaired=%v err=%v", cut, repaired, err)
		}
		info, err = scanWAL(OSFS, path, nil)
		if err != nil || info.tornAt != -1 || info.records != 2 {
			t.Fatalf("after repair at %d: %+v err=%v", cut, info, err)
		}
	}

	// A flipped bit inside an intact record reads as a torn tail there: the
	// record and everything after it is dropped (the documented weaker
	// contract for in-place WAL corruption).
	corrupted := append([]byte(nil), full...)
	corrupted[walHeaderLen+recLen+12] ^= 0x01
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	info, err = scanWAL(OSFS, path, nil)
	if err != nil {
		t.Fatalf("scan flipped: %v", err)
	}
	if info.records != 1 || info.tornAt != int64(walHeaderLen+recLen) {
		t.Fatalf("flipped record: %+v", info)
	}

	// A short or missing header is a torn creation: reported, not fatal.
	if err := os.WriteFile(path, full[:walHeaderLen-3], 0o644); err != nil {
		t.Fatal(err)
	}
	info, err = scanWAL(OSFS, path, nil)
	if err != nil || !info.badHeader {
		t.Fatalf("short header: %+v err=%v", info, err)
	}
	// A wrong magic is unrecoverable corruption.
	bad := append([]byte("NOTMYWAL"), full[8:]...)
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := scanWAL(OSFS, path, nil); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("bad magic: err=%v", err)
	}
	// A missing file simply does not exist.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	info, err = scanWAL(OSFS, path, nil)
	if err != nil || info.exists {
		t.Fatalf("missing file: %+v err=%v", info, err)
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
		ok   bool
	}{
		{"always", FsyncAlways, true},
		{"interval", FsyncInterval, true},
		{"off", FsyncOff, true},
		{"sometimes", 0, false},
	} {
		got, err := ParseFsyncPolicy(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if tc.ok && got.String() != tc.in {
			t.Fatalf("round trip %q -> %q", tc.in, got)
		}
	}
}
