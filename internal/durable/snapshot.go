package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"sync"
	"time"

	"marketscope/internal/appmeta"
	"marketscope/internal/query"
)

// Snapshot file layout (format version in the header section):
//
//	"MSNAP001"
//	sections: repeated [ id u32 | len u64 | payload | crc u32 ]
//	  1 header:  version u32, cursor u64, crawlTime, record/blob/column counts
//	  2 records: the dataset's metadata records, in dataset order, laid out
//	             struct-of-arrays (one plane per field; see below)
//	  3 blobs:   the APK bytes of every ingested key that supplied one
//	  version 1 continues:
//	  4 columns: the sealed column store (typed slices, null bitmaps,
//	             dictionaries, bitmap posting lists, zone maps)
//	  version 2 continues:
//	  6 colmeta: per column, everything but the value planes (null bitmap,
//	             dictionary, zone maps, posting lists) plus the page table
//	             locating the planes inside section 7
//	  7 pages:   per-page frames [ len u32 | crc u32 | payload ] of column
//	             value planes — individually checksummed so a lazy reader can
//	             fetch and verify one page without touching the rest
//	  both end with:
//	  5 footer:  "MSNAPEND"
//
// Every section payload carries its own CRC32-C; the footer proves the file
// was written to completion. Snapshots are written to a temp name, fsynced,
// atomically renamed to snap-<cursor>.snap and the directory fsynced, so a
// crash mid-write leaves at worst a stale temp file — never a half-visible
// snapshot. Any decode failure anywhere makes the whole file invalid; the
// store then quarantines it and falls back. The single exception is a header
// announcing a version newer than this build understands: the file is
// refused wholesale (ErrSnapshotVersion) but left in place for the newer
// binary that wrote it.
//
// This build writes version 2 and reads both. Version 2's lazy reader and
// the page codec live in paged.go.

const (
	snapMagic       = "MSNAP001"
	snapMagicPrefix = "MSNAP"
	snapFooter      = "MSNAPEND"
	snapVersion     = 1
	// snapVersionPaged is the current write format: column value planes live
	// in a per-page-checksummed pages section behind a page table, so a
	// reader can validate the file and serve queries without materializing
	// the columns (see paged.go).
	snapVersionPaged = 2
	snapSuffix       = ".snap"
	corruptSuffix    = ".corrupt"
)

const (
	secHeader  = 1
	secRecords = 2
	secBlobs   = 3
	secColumns = 4
	secFooter  = 5
	// Version-2 sections: column metadata (everything but the value planes,
	// plus the page table) and the page frames themselves.
	secColMeta  = 6
	secColPages = 7
)

// The records section is laid out struct-of-arrays: one plane per Record
// field, fixed-width planes first, then each string field as a length plane
// followed by its concatenated bytes. A row-major walk of 80k variable-length
// records costs a bounds-checked read per field per record and dominated
// recovery time; the planar layout decodes each field with one bounds check
// and materializes every string as a substring of a single section copy.

func encodeRecordsSection(records []appmeta.Record) []byte {
	var e encoder
	n := len(records)
	e.u32(uint32(n))
	for i := range records {
		e.i64(records[i].VersionCode)
	}
	for i := range records {
		e.i64(records[i].Downloads)
	}
	for i := range records {
		e.f64(records[i].Rating)
	}
	for _, get := range []func(*appmeta.Record) time.Time{
		func(r *appmeta.Record) time.Time { return r.ReleaseDate },
		func(r *appmeta.Record) time.Time { return r.UpdateDate },
	} {
		for i := range records {
			e.i64(get(&records[i]).Unix())
		}
		for i := range records {
			e.i32(int32(get(&records[i]).Nanosecond()))
		}
		for i := range records {
			_, off := get(&records[i]).Zone()
			e.i32(int32(off))
		}
	}
	for i := range records {
		e.i64(records[i].APKSize)
	}
	for i := range records {
		e.bool(records[i].HasAds)
	}
	for i := range records {
		e.bool(records[i].HasIAP)
	}
	for _, get := range recordStringFields {
		for i := range records {
			e.u32(uint32(len(*get(&records[i]))))
		}
		for i := range records {
			e.buf = append(e.buf, *get(&records[i])...)
		}
	}
	return e.buf
}

// recordStringFields lists the Record string fields in plane order.
var recordStringFields = []func(*appmeta.Record) *string{
	func(r *appmeta.Record) *string { return &r.Market },
	func(r *appmeta.Record) *string { return &r.Package },
	func(r *appmeta.Record) *string { return &r.AppName },
	func(r *appmeta.Record) *string { return &r.Category },
	func(r *appmeta.Record) *string { return &r.DeveloperName },
	func(r *appmeta.Record) *string { return &r.VersionName },
	func(r *appmeta.Record) *string { return &r.Description },
}

func decodeRecordsSection(payload []byte, numRecords int) ([]appmeta.Record, error) {
	d := &decoder{buf: payload}
	// Every record occupies at least its fixed-width plane bytes (66) plus a
	// length per string plane.
	if n := d.count(64); d.err == nil && n != numRecords {
		d.fail("record count %d disagrees with header %d", n, numRecords)
	}
	n := numRecords
	if d.err != nil {
		return nil, d.err
	}
	versionCode := d.i64s(n)
	downloads := d.i64s(n)
	rating := d.f64s(n)
	relSec, relNsec, relOff := d.i64s(n), d.i32s(n), d.i32s(n)
	updSec, updNsec, updOff := d.i64s(n), d.i32s(n), d.i32s(n)
	apkSize := d.i64s(n)
	hasAds := d.bools(n)
	hasIAP := d.bools(n)
	strs := make([][]string, len(recordStringFields))
	for f := range strs {
		strs[f] = d.strsPlane(n)
	}
	if d.err == nil && d.remaining() != 0 {
		d.fail("trailing bytes")
	}
	if d.err != nil {
		return nil, d.err
	}
	records := make([]appmeta.Record, n)
	for i := range records {
		rel, err := planeTime(relSec[i], relNsec[i], relOff[i])
		if err != nil {
			return nil, err
		}
		upd, err := planeTime(updSec[i], updNsec[i], updOff[i])
		if err != nil {
			return nil, err
		}
		records[i] = appmeta.Record{
			Market:        strs[0][i],
			Package:       strs[1][i],
			AppName:       strs[2][i],
			Category:      strs[3][i],
			DeveloperName: strs[4][i],
			VersionCode:   versionCode[i],
			VersionName:   strs[5][i],
			Description:   strs[6][i],
			Downloads:     downloads[i],
			Rating:        rating[i],
			ReleaseDate:   rel,
			UpdateDate:    upd,
			APKSize:       apkSize[i],
			HasAds:        hasAds[i],
			HasIAP:        hasIAP[i],
		}
	}
	return records, nil
}

// planeTime rebuilds one instant from its planes, mirroring decoder.timeVal.
func planeTime(sec int64, nsec, off int32) (time.Time, error) {
	if nsec < 0 || nsec >= 1e9 {
		return time.Time{}, fmt.Errorf("durable: time nanoseconds %d out of range", nsec)
	}
	t := time.Unix(sec, int64(nsec)).UTC()
	if off != 0 {
		t = t.In(time.FixedZone("", int(off)))
	}
	return t, nil
}

// ErrSnapshotCorrupt wraps every structural failure loading a snapshot.
var ErrSnapshotCorrupt = errors.New("durable: snapshot corrupt")

// ErrSnapshotVersion marks a snapshot written by a newer format version than
// this build reads. The file is not corrupt — a newer binary can load it — so
// recovery skips it without quarantining and falls back to an older
// generation or the WAL. Nothing of the file is adopted.
var ErrSnapshotVersion = errors.New("durable: snapshot from a newer format version")

// snapshotData is one decoded snapshot: everything recovery needs to rebuild
// the ingestor (records + blobs + cursor + crawl time) plus the column store
// that spares the engine its re-extraction.
type snapshotData struct {
	cursor    uint64
	crawlTime time.Time
	records   []appmeta.Record
	blobs     map[appmeta.Key][]byte
	columns   []query.ColumnData
}

func snapshotName(cursor uint64) string { return fmt.Sprintf("snap-%016x%s", cursor, snapSuffix) }

// parseSnapshotName extracts the cursor from a snap-<cursor>.snap name.
func parseSnapshotName(name string) (uint64, bool) {
	var cursor uint64
	var suffix string
	n, err := fmt.Sscanf(name, "snap-%016x%s", &cursor, &suffix)
	if err != nil || n != 2 || suffix != snapSuffix || name != snapshotName(cursor) {
		return 0, false
	}
	return cursor, true
}

func appendSection(buf []byte, id uint32, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, id)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
}

func encodeHeaderSection(data *snapshotData, version uint32) []byte {
	var hdr encoder
	hdr.u32(version)
	hdr.u64(data.cursor)
	hdr.timeVal(data.crawlTime)
	hdr.u32(uint32(len(data.records)))
	hdr.u32(uint32(len(data.blobs)))
	hdr.u32(uint32(len(data.columns)))
	return hdr.buf
}

func encodeBlobsSection(data *snapshotData) []byte {
	keys := make([]appmeta.Key, 0, len(data.blobs))
	for k := range data.blobs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Market != keys[j].Market {
			return keys[i].Market < keys[j].Market
		}
		return keys[i].Package < keys[j].Package
	})
	var blobs encoder
	blobs.u32(uint32(len(keys)))
	for _, k := range keys {
		blobs.str(k.Market)
		blobs.str(k.Package)
		blobs.bytes(data.blobs[k])
	}
	return blobs.buf
}

// encodeSnapshot serializes the current write format (version 2, paged
// columns). encodeSnapshotV1 keeps the legacy layout alive for the dual-read
// tests.
func encodeSnapshot(data *snapshotData) []byte {
	metas, pages := buildPagedColumns(data.columns)
	buf := []byte(snapMagic)
	buf = appendSection(buf, secHeader, encodeHeaderSection(data, snapVersionPaged))
	buf = appendSection(buf, secRecords, encodeRecordsSection(data.records))
	buf = appendSection(buf, secBlobs, encodeBlobsSection(data))
	buf = appendSection(buf, secColMeta, encodeColMetaSection(metas))
	buf = appendSection(buf, secColPages, pages)
	return appendSection(buf, secFooter, []byte(snapFooter))
}

func encodeSnapshotV1(data *snapshotData) []byte {
	var cols encoder
	cols.u32(uint32(len(data.columns)))
	for i := range data.columns {
		encodeColumn(&cols, &data.columns[i])
	}

	buf := []byte(snapMagic)
	buf = appendSection(buf, secHeader, encodeHeaderSection(data, snapVersion))
	buf = appendSection(buf, secRecords, encodeRecordsSection(data.records))
	buf = appendSection(buf, secBlobs, encodeBlobsSection(data))
	buf = appendSection(buf, secColumns, cols.buf)
	return appendSection(buf, secFooter, []byte(snapFooter))
}

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrSnapshotCorrupt, fmt.Sprintf(format, args...))
}

// nextSection parses one section frame without verifying its checksum; the
// caller runs checkSection, possibly on another goroutine — the payload
// sections are megabytes each and their checksums can verify concurrently.
func nextSection(buf []byte, off int) (id uint32, payload []byte, crc uint32, next int, err error) {
	if len(buf)-off < 12 {
		return 0, nil, 0, 0, corrupt("truncated section frame at offset %d", off)
	}
	id = binary.LittleEndian.Uint32(buf[off:])
	n := binary.LittleEndian.Uint64(buf[off+4:])
	body := off + 12
	if rem := len(buf) - body; rem < 4 || n > uint64(rem-4) {
		return 0, nil, 0, 0, corrupt("section %d length %d exceeds file", id, n)
	}
	payload = buf[body : body+int(n)]
	crc = binary.LittleEndian.Uint32(buf[body+int(n):])
	return id, payload, crc, body + int(n) + 4, nil
}

func checkSection(id uint32, payload []byte, crc uint32) error {
	if crc32.Checksum(payload, castagnoli) != crc {
		return corrupt("section %d checksum mismatch", id)
	}
	return nil
}

func decodeSnapshot(buf []byte) (*snapshotData, error) {
	data, wait, err := decodeSnapshotOverlap(buf)
	if err != nil {
		return nil, err
	}
	if err := wait(); err != nil {
		return nil, err
	}
	return data, nil
}

// decodeSnapshotOverlap verifies every section frame and decodes the header,
// records and blobs sections before returning; the columns section — the
// largest — keeps decoding on a background goroutine, and wait blocks until
// it finishes and reports its error. Recovery exploits the split: rebuilding
// the ingestor needs only records and blobs, so it runs concurrently with the
// column decode instead of after it. data.columns must not be touched before
// wait returns nil.
func decodeSnapshotOverlap(buf []byte) (*snapshotData, func() error, error) {
	if len(buf) < len(snapMagic) {
		return nil, nil, corrupt("bad magic")
	}
	if string(buf[:len(snapMagic)]) != snapMagic {
		if string(buf[:len(snapMagicPrefix)]) == snapMagicPrefix {
			return nil, nil, fmt.Errorf("%w: magic %q, this build reads %q",
				ErrSnapshotVersion, buf[:len(snapMagic)], snapMagic)
		}
		return nil, nil, corrupt("bad magic")
	}
	// The header section comes first and names the version, which decides
	// what sections must follow it.
	gotID, hdrPayload, hdrCRC, off, err := nextSection(buf, len(snapMagic))
	if err != nil {
		return nil, nil, err
	}
	if gotID != secHeader {
		return nil, nil, corrupt("section %d where %d expected", gotID, secHeader)
	}
	if err := checkSection(secHeader, hdrPayload, hdrCRC); err != nil {
		return nil, nil, err
	}
	hd := &decoder{buf: hdrPayload}
	version := hd.u32()
	data := &snapshotData{cursor: hd.u64(), crawlTime: hd.timeVal()}
	numRecords := int(hd.u32())
	numBlobs := int(hd.u32())
	numColumns := int(hd.u32())
	if hd.err != nil {
		return nil, nil, corrupt("header: %v", hd.err)
	}
	var colSections []uint32
	switch version {
	case snapVersion:
		colSections = []uint32{secColumns}
	case snapVersionPaged:
		colSections = []uint32{secColMeta, secColPages}
	default:
		return nil, nil, fmt.Errorf("%w: version %d, this build reads up to %d",
			ErrSnapshotVersion, version, snapVersionPaged)
	}
	want := append([]uint32{secRecords, secBlobs}, colSections...)
	want = append(want, secFooter)
	payloads := make(map[uint32][]byte, len(want))
	crcs := make(map[uint32]uint32, len(want))
	for _, id := range want {
		gotID, payload, crc, next, err := nextSection(buf, off)
		if err != nil {
			return nil, nil, err
		}
		if gotID != id {
			return nil, nil, corrupt("section %d where %d expected", gotID, id)
		}
		payloads[id] = payload
		crcs[id] = crc
		off = next
	}
	if off != len(buf) {
		return nil, nil, corrupt("%d trailing bytes after footer", len(buf)-off)
	}
	// The footer verifies inline; the payload sections verify inside their
	// decode goroutines below, ahead of any decoding.
	if err := checkSection(secFooter, payloads[secFooter], crcs[secFooter]); err != nil {
		return nil, nil, err
	}
	if string(payloads[secFooter]) != snapFooter {
		return nil, nil, corrupt("bad footer")
	}

	// The three payload sections are independent byte ranges; decode them
	// concurrently — recovery latency is the point of snapshots, and the
	// records and columns sections are each megabytes at bench scale. The
	// columns goroutine is not joined here; wait exposes it.
	var recErr, blobErr, colErr error
	var wg sync.WaitGroup
	wg.Add(2)
	colDone := make(chan struct{})
	go func() {
		defer wg.Done()
		if recErr = checkSection(secRecords, payloads[secRecords], crcs[secRecords]); recErr != nil {
			return
		}
		records, err := decodeRecordsSection(payloads[secRecords], numRecords)
		if err != nil {
			recErr = corrupt("records: %v", err)
			return
		}
		data.records = records
	}()
	go func() {
		defer wg.Done()
		if blobErr = checkSection(secBlobs, payloads[secBlobs], crcs[secBlobs]); blobErr != nil {
			return
		}
		data.blobs, blobErr = decodeBlobsSection(payloads[secBlobs], numBlobs)
	}()
	go func() {
		defer close(colDone)
		for _, id := range colSections {
			if colErr = checkSection(id, payloads[id], crcs[id]); colErr != nil {
				return
			}
		}
		if version == snapVersionPaged {
			metas, err := decodeColMetaSection(payloads[secColMeta], numColumns, uint64(len(payloads[secColPages])))
			if err == nil {
				data.columns, err = assembleColumnsEager(metas, payloads[secColPages])
			}
			colErr = err
			return
		}
		cd := &decoder{buf: payloads[secColumns]}
		if n := cd.count(16); cd.err == nil && n != numColumns {
			cd.fail("column count %d disagrees with header %d", n, numColumns)
		}
		data.columns = make([]query.ColumnData, 0, numColumns)
		for i := 0; i < numColumns && cd.err == nil; i++ {
			data.columns = append(data.columns, decodeColumn(cd))
		}
		if cd.err == nil && cd.remaining() != 0 {
			cd.fail("trailing bytes")
		}
		if cd.err != nil {
			colErr = corrupt("columns: %v", cd.err)
		}
	}()
	wait := func() error {
		<-colDone
		return colErr
	}
	wg.Wait()
	for _, err := range []error{recErr, blobErr} {
		if err != nil {
			// Join the columns goroutine before the caller discards data —
			// nothing may still be writing into a snapshot we reject.
			_ = wait()
			return nil, nil, err
		}
	}
	return data, wait, nil
}

// decodeBlobsSection decodes the blob map (shared by the eager and lazy
// loaders; the caller has already verified the section checksum).
func decodeBlobsSection(payload []byte, numBlobs int) (map[appmeta.Key][]byte, error) {
	bd := &decoder{buf: payload}
	if n := bd.count(12); bd.err == nil && n != numBlobs {
		bd.fail("blob count %d disagrees with header %d", n, numBlobs)
	}
	blobs := make(map[appmeta.Key][]byte, numBlobs)
	for i := 0; i < numBlobs && bd.err == nil; i++ {
		k := appmeta.Key{Market: bd.str(), Package: bd.str()}
		b := bd.bytes()
		if b == nil {
			b = []byte{}
		}
		if bd.err != nil {
			break
		}
		if _, dup := blobs[k]; dup {
			bd.fail("duplicate blob key %s/%s", k.Market, k.Package)
			break
		}
		blobs[k] = b
	}
	if bd.err == nil && bd.remaining() != 0 {
		bd.fail("trailing bytes")
	}
	if bd.err != nil {
		return nil, corrupt("blobs: %v", bd.err)
	}
	return blobs, nil
}

// String-layout tags inside a column record.
const (
	strLayoutPlain = 0
	strLayoutDict  = 1
)

func encodeColumn(e *encoder, c *query.ColumnData) {
	e.str(c.Name)
	e.str(string(c.Kind))
	e.u32(uint32(len(c.NullWords)))
	for _, w := range c.NullWords {
		e.u64(w)
	}
	e.u64(uint64(c.NullCount))
	e.bool(c.HasNaN)
	switch c.Kind {
	case query.KindInt:
		e.u32(uint32(len(c.Ints)))
		for _, v := range c.Ints {
			e.i64(v)
		}
	case query.KindFloat:
		e.u32(uint32(len(c.Floats)))
		for _, v := range c.Floats {
			e.f64(v)
		}
	case query.KindBool:
		e.u32(uint32(len(c.Bools)))
		for _, v := range c.Bools {
			e.bool(v)
		}
	case query.KindTime:
		// Planar: all seconds, then all nanoseconds, then all offsets, so the
		// decoder reads three bulk slices instead of framing per row.
		e.u32(uint32(len(c.TimeSec)))
		for _, v := range c.TimeSec {
			e.i64(v)
		}
		for _, v := range c.TimeNsec {
			e.i32(v)
		}
		for _, v := range c.TimeOff {
			e.i32(v)
		}
	case query.KindString:
		if c.Dict != nil {
			e.u8(strLayoutDict)
			e.strsPlane(c.Dict)
			e.u32(uint32(len(c.Codes)))
			for _, v := range c.Codes {
				e.u32(v)
			}
		} else {
			e.u8(strLayoutPlain)
			e.strsPlane(c.Strs)
		}
	}
	e.u32(uint32(c.SegmentRows))
	e.u32(uint32(len(c.Zones)))
	for _, z := range c.Zones {
		e.i32(z.Rows)
		e.i32(z.Nulls)
		e.i32(z.MinRow)
		e.i32(z.MaxRow)
	}
	e.bool(c.Postings != nil)
	if c.Postings != nil {
		e.u32(uint32(len(c.Postings)))
		for _, rows := range c.Postings {
			e.u32(uint32(len(rows)))
			for _, r := range rows {
				e.i32(r)
			}
		}
	}
}

func decodeColumn(d *decoder) query.ColumnData {
	c := query.ColumnData{Name: d.str(), Kind: query.Kind(d.str())}
	c.NullWords = d.u64s(d.count(8))
	c.NullCount = int(d.u64())
	c.HasNaN = d.bool()
	switch c.Kind {
	case query.KindInt:
		c.Ints = d.i64s(d.count(8))
	case query.KindFloat:
		c.Floats = d.f64s(d.count(8))
	case query.KindBool:
		c.Bools = d.bools(d.count(1))
	case query.KindTime:
		n := d.count(16)
		c.TimeSec = d.i64s(n)
		c.TimeNsec = d.i32s(n)
		c.TimeOff = d.i32s(n)
	case query.KindString:
		switch d.u8() {
		case strLayoutDict:
			c.Dict = d.strsPlane(d.count(4))
			if c.Dict == nil && d.err == nil {
				c.Dict = []string{}
			}
			c.Codes = d.u32s(d.count(4))
		case strLayoutPlain:
			c.Strs = d.strsPlane(d.count(4))
		default:
			d.fail("durable: unknown string layout")
		}
	default:
		d.fail("durable: unknown column kind %q", c.Kind)
	}
	c.SegmentRows = int(d.u32())
	nz := d.count(16)
	c.Zones = make([]query.ZoneData, 0, nz)
	for i := 0; i < nz && d.err == nil; i++ {
		c.Zones = append(c.Zones, query.ZoneData{
			Rows: d.i32(), Nulls: d.i32(), MinRow: d.i32(), MaxRow: d.i32(),
		})
	}
	if len(c.Zones) == 0 {
		c.Zones = nil
	}
	if d.bool() {
		n := d.count(4)
		c.Postings = make([][]int32, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			c.Postings = append(c.Postings, d.i32s(d.count(4)))
		}
	}
	return c
}

// writeSnapshot persists one snapshot with the temp-file + fsync + rename +
// dir-fsync protocol and returns the final path.
func writeSnapshot(fsys FS, dir string, data *snapshotData) (string, error) {
	name := snapshotName(data.cursor)
	tmp := joinPath(dir, name+".tmp")
	final := joinPath(dir, name)
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", fmt.Errorf("durable: create snapshot temp: %w", err)
	}
	cleanup := func() { _ = fsys.Remove(tmp) }
	if _, err := f.Write(encodeSnapshot(data)); err != nil {
		f.Close()
		cleanup()
		return "", fmt.Errorf("durable: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		cleanup()
		return "", fmt.Errorf("durable: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		cleanup()
		return "", fmt.Errorf("durable: close snapshot: %w", err)
	}
	if err := fsys.Rename(tmp, final); err != nil {
		cleanup()
		return "", fmt.Errorf("durable: rename snapshot into place: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return "", fmt.Errorf("durable: sync snapshot dir: %w", err)
	}
	return final, nil
}

// loadSnapshotFile reads and fully decodes one snapshot file.
func loadSnapshotFile(fsys FS, path string) (*snapshotData, error) {
	buf, err := readWhole(fsys, path)
	if err != nil {
		return nil, fmt.Errorf("durable: read snapshot: %w", err)
	}
	return decodeSnapshot(buf)
}

// loadSnapshotFileOverlap is loadSnapshotFile with the columns section left
// decoding in the background; see decodeSnapshotOverlap.
func loadSnapshotFileOverlap(fsys FS, path string) (*snapshotData, func() error, error) {
	buf, err := readWhole(fsys, path)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: read snapshot: %w", err)
	}
	return decodeSnapshotOverlap(buf)
}

// joinPath joins with forward slashes — both the OS filesystem (on the
// platforms this runs on) and the in-memory test filesystem accept them, and
// a fixed separator keeps paths deterministic across both.
func joinPath(dir, name string) string {
	if dir == "" {
		return name
	}
	return dir + "/" + name
}
