package durable

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"marketscope/internal/analysis"
	"marketscope/internal/appmeta"
	"marketscope/internal/ingest"
	"marketscope/internal/query"
)

// walFileName is the write-ahead log inside the data directory.
const walFileName = "wal.log"

// Options configures a durable Store.
type Options struct {
	// FS is the filesystem; nil means the real one (OSFS).
	FS FS
	// Dir is the data directory (created if absent).
	Dir string
	// Fsync is the WAL sync policy; the zero value is FsyncAlways.
	Fsync FsyncPolicy
	// FsyncInterval is the sync period under FsyncInterval; 0 means 100ms.
	FsyncInterval time.Duration
	// SnapshotEvery writes a snapshot after that many applied batches;
	// 0 disables automatic snapshots (WriteSnapshot remains available).
	SnapshotEvery int
	// KeepSnapshots bounds retained snapshot generations; 0 means 2.
	KeepSnapshots int
	// Ingest configures the wrapped ingestor. Commit must be nil — the store
	// owns the commit hook; Publish is suppressed during recovery replay and
	// forwarded afterwards.
	Ingest ingest.Options
	// Metrics receives recovery and snapshot counters; nil allocates one.
	Metrics *Metrics

	// PageBudget enables lazy column paging for snapshot recovery: instead of
	// materializing every column eagerly, the recovered engine leaves them on
	// disk and pages them in on first touch, holding at most PageBudget
	// decoded bytes resident (pinned columns excepted — a single request's
	// working set always completes). 0 disables paging (fully materialized,
	// the default); negative means page lazily with no residency bound.
	PageBudget int64
	// PageRetries bounds transient fetch-failure retries per page-in; 0 means
	// 2, negative means none.
	PageRetries int
	// PageRetryDelay is the initial retry backoff (doubled per attempt);
	// 0 means 2ms.
	PageRetryDelay time.Duration
}

// Store is a crash-safe ingest.Applier: every acknowledged delta is in the
// WAL first (per the fsync policy), snapshots bound replay work, and Open
// recovers an engine byte-identical to a cold build over the acknowledged
// prefix. See the package comment for the exact contract.
type Store struct {
	fsys    FS
	dir     string
	walPath string
	opts    Options
	m       *Metrics

	ing  *ingest.Ingestor
	w    *wal
	live atomic.Bool // false while recovery replays the log

	// pool is the column page pool when Options.PageBudget enabled paging,
	// nil otherwise. servedDS tracks the dataset epoch most recently published
	// so an epoch swap can retire the outgoing engine's pages.
	pool     *query.PagePool
	servedMu sync.Mutex
	servedDS *analysis.Dataset

	snapMu    sync.Mutex // serializes snapshot writes and the cadence counter
	sinceSnap int
	snapErr   error  // last automatic snapshot failure, for Err()
	basePath  string // newest good snapshot file, "" after a cold rebuild

	closeOnce sync.Once
	stopSync  chan struct{}
	syncDone  chan struct{}
}

// Open recovers (or initializes) the data directory and returns a live
// store. The recovery ladder, newest snapshot first:
//
//  1. Load a snapshot, restore the ingestor from its records+blobs, install
//     its column store, replay the WAL tail (seq ≥ snapshot cursor).
//  2. Any failure quarantines that snapshot (renamed *.corrupt, counted) and
//     tries the previous generation.
//  3. With no usable snapshot, rebuild cold: a fresh ingestor replaying the
//     whole WAL.
//
// A torn WAL tail is truncated before any of that; a corrupt WAL header is
// unrecoverable (the acknowledged batches cannot be reproduced) and fails
// Open rather than serving partial state. Nothing is published during
// recovery — attach the recovered dataset to a server after Open returns.
func Open(opts Options) (*Store, error) {
	if opts.Ingest.Commit != nil {
		return nil, errors.New("durable: Options.Ingest.Commit is owned by the store")
	}
	if opts.Dir == "" {
		return nil, errors.New("durable: Options.Dir is required")
	}
	s := &Store{
		fsys:    opts.FS,
		dir:     opts.Dir,
		walPath: joinPath(opts.Dir, walFileName),
		opts:    opts,
		m:       opts.Metrics,
	}
	if s.fsys == nil {
		s.fsys = OSFS
	}
	if s.m == nil {
		s.m = &Metrics{}
	}
	if s.opts.KeepSnapshots <= 0 {
		s.opts.KeepSnapshots = 2
	}
	if s.opts.FsyncInterval <= 0 {
		s.opts.FsyncInterval = 100 * time.Millisecond
	}
	if opts.PageBudget != 0 {
		budget := opts.PageBudget
		if budget < 0 {
			budget = 0 // NewPagePool treats a non-positive budget as unbounded
		}
		retries := opts.PageRetries
		if retries == 0 {
			retries = 2
		} else if retries < 0 {
			retries = 0
		}
		delay := opts.PageRetryDelay
		if delay <= 0 {
			delay = 2 * time.Millisecond
		}
		s.pool = query.NewPagePool(budget, retries, delay)
		s.m.attachPagePool(s.pool)
	}
	if err := s.fsys.MkdirAll(s.dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: create data dir: %w", err)
	}

	scan, err := scanWAL(s.fsys, s.walPath, nil)
	if err != nil {
		return nil, err
	}
	ingOpts := s.opts.Ingest
	if scan.exists && !scan.badHeader {
		// The header's crawl time, not the caller's: a restored dataset must
		// be stamped exactly as the original batches were.
		ingOpts.CrawlTime = scan.crawlTime
	}
	ingOpts.Commit = s.commit
	userPublish := ingOpts.Publish
	ingOpts.Publish = func(ds *analysis.Dataset) {
		// Track the served epoch even while recovery replays (live still
		// false): a tail-replay swap must retire the paged snapshot engine
		// exactly like a live swap would.
		s.noteServed(ds)
		if s.live.Load() && userPublish != nil {
			userPublish(ds)
		}
	}
	if !scan.exists || scan.badHeader {
		if err := createWAL(s.fsys, s.dir, s.walPath, ingOpts.CrawlTime); err != nil {
			return nil, err
		}
	} else if repaired, err := repairWAL(s.fsys, s.walPath, scan); err != nil {
		return nil, err
	} else if repaired {
		s.m.WALTailTruncations.Add(1)
	}

	if err := s.recover(ingOpts, scan); err != nil {
		return nil, err
	}

	w, err := openWALAppender(s.fsys, s.walPath, s.opts.Fsync)
	if err != nil {
		return nil, err
	}
	s.w = w
	s.live.Store(true)
	if s.opts.Fsync == FsyncInterval {
		s.stopSync = make(chan struct{})
		s.syncDone = make(chan struct{})
		go s.syncLoop()
	}
	return s, nil
}

// errStopReplay ends a WAL replay early without reporting failure: a seq gap
// means the log was damaged and truncated in a previous incarnation while a
// snapshot carried the cursor past the tear. Everything before the gap is
// clean acknowledged state; everything after it belongs to a newer epoch the
// snapshot already covers (or is lost with the tear, under the documented
// weaker contract for in-place corruption).
var errStopReplay = errors.New("durable: replay stopped at seq gap")

// recover builds s.ing from the best available state. scan is Open's initial
// integrity pass over the WAL (already repaired): when it proves the log
// holds nothing at or past a snapshot's cursor, the tail replay is skipped
// entirely instead of re-reading the whole log to apply zero records.
func (s *Store) recover(ingOpts ingest.Options, scan walScanInfo) error {
	var replayed int64
	replay := func(ing *ingest.Ingestor, from uint64) error {
		_, err := scanWAL(s.fsys, s.walPath, func(seq uint64, payload []byte) error {
			if seq < from {
				return nil
			}
			listings, err := decodeListings(payload)
			if err != nil {
				return fmt.Errorf("%w: record seq %d: %v", ErrWALCorrupt, seq, err)
			}
			if _, err := ing.Apply(ingest.Delta{Seq: seq, Listings: listings}); err != nil {
				if errors.Is(err, ingest.ErrCursorGap) {
					return errStopReplay
				}
				return fmt.Errorf("durable: replay seq %d: %w", seq, err)
			}
			replayed++
			return nil
		})
		if errors.Is(err, errStopReplay) {
			return nil
		}
		return err
	}

	for _, name := range s.snapshotNames() {
		path := joinPath(s.dir, name)
		start := time.Now()
		ing, cursor, err := s.loadSnapshot(ingOpts, path)
		if err == nil {
			s.noteServed(ing.Dataset())
			replayed = 0
			tailEmpty := scan.records == 0 || scan.lastSeq < cursor
			if !tailEmpty {
				err = replay(ing, cursor)
			}
			if err != nil {
				if !errors.Is(err, ErrWALCorrupt) {
					return err
				}
			} else {
				s.ing = ing
				s.basePath = path
				s.m.setSnapshotLoadSeconds(time.Since(start).Seconds())
				s.m.LastSnapshotGeneration.Store(cursor)
				s.m.WALRecordsReplayed.Store(replayed)
				return nil
			}
			// Replay off this snapshot failed; drop whatever epoch it
			// installed before falling back to an older generation.
			s.noteServed(nil)
		}
		if errors.Is(err, ErrSnapshotVersion) {
			// Written by a newer binary — not corrupt, just unreadable here.
			// Leave the file exactly as found (a quarantine rename would
			// destroy the newer binary's data) and fall back to an older
			// generation or the WAL. Nothing of the file was adopted.
			continue
		}
		if qerr := s.quarantine(name); qerr != nil {
			return fmt.Errorf("durable: snapshot %s failed (%v) and could not be quarantined: %w", name, err, qerr)
		}
	}

	ing := ingest.New(ingOpts)
	replayed = 0
	if err := replay(ing, 0); err != nil {
		return err
	}
	s.ing = ing
	s.m.WALRecordsReplayed.Store(replayed)
	return nil
}

// loadSnapshot restores an ingestor (and its dataset's column store) from one
// snapshot file. With paging enabled and a version-2 file, the columns stay
// on disk: only records, blobs and column metadata are read eagerly, and the
// installed engine pages value planes in through the store's pool. Version-1
// files — and all files when paging is off — load eagerly and fully
// materialized. Returns the snapshot's cursor alongside the ingestor.
func (s *Store) loadSnapshot(ingOpts ingest.Options, path string) (*ingest.Ingestor, uint64, error) {
	if s.pool != nil {
		lz, err := openSnapshotLazy(s.fsys, path)
		switch {
		case err == nil:
			ing, err := ingest.Restore(ingOpts, lz.cursor, lz.records, analysis.APKBytesOf(lz.blobs))
			if err != nil {
				return nil, 0, err
			}
			ds := ing.Dataset()
			if ds == nil && lz.fetcher != nil {
				return nil, 0, fmt.Errorf("%w: columns without records", ErrSnapshotCorrupt)
			}
			if ds != nil && lz.fetcher != nil {
				if err := ds.InstallPagedQueryColumns(lz.fetcher, s.pool); err != nil {
					return nil, 0, err
				}
			}
			return ing, lz.cursor, nil
		case errors.Is(err, errSnapshotNotPaged):
			// A version-1 file has no page table; fall through to the eager
			// loader below.
		default:
			return nil, 0, err
		}
	}
	// The columns section keeps decoding in the background while the ingestor
	// is rebuilt from records+blobs — the two longest phases of recovery
	// overlap instead of running back to back.
	data, waitCols, err := loadSnapshotFileOverlap(s.fsys, path)
	if err != nil {
		return nil, 0, err
	}
	ing, err := ingest.Restore(ingOpts, data.cursor, data.records, analysis.APKBytesOf(data.blobs))
	if cerr := waitCols(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, 0, err
	}
	if ing.Dataset() != nil {
		if err := ing.Dataset().InstallQueryColumns(data.columns); err != nil {
			return nil, 0, err
		}
	} else if len(data.columns) > 0 {
		return nil, 0, fmt.Errorf("%w: columns without records", ErrSnapshotCorrupt)
	}
	return ing, data.cursor, nil
}

// noteServed records ds as the epoch currently served and retires the
// previous epoch's engine from the page pool — resident columns evict,
// pinned ones when their in-flight scans finish. A no-op when paging is
// disabled.
func (s *Store) noteServed(ds *analysis.Dataset) {
	if s.pool == nil {
		return
	}
	s.servedMu.Lock()
	prev := s.servedDS
	s.servedDS = ds
	s.servedMu.Unlock()
	if prev != nil && prev != ds {
		prev.DropPagedColumns()
	}
}

// PageStats reports the page pool's residency and fault counters, zero when
// paging is disabled.
func (s *Store) PageStats() query.PageStats {
	if s.pool == nil {
		return query.PageStats{}
	}
	return s.pool.Stats()
}

// snapshotNames lists snapshot files newest-generation first.
func (s *Store) snapshotNames() []string {
	names, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	type gen struct {
		name   string
		cursor uint64
	}
	var gens []gen
	for _, name := range names {
		if cursor, ok := parseSnapshotName(name); ok {
			gens = append(gens, gen{name, cursor})
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i].cursor > gens[j].cursor })
	out := make([]string, len(gens))
	for i, g := range gens {
		out[i] = g.name
	}
	return out
}

// quarantine renames a failed snapshot aside so the next Open does not trip
// over it again, and counts it.
func (s *Store) quarantine(name string) error {
	path := joinPath(s.dir, name)
	if err := s.fsys.Rename(path, path+corruptSuffix); err != nil {
		return err
	}
	_ = s.fsys.SyncDir(s.dir)
	s.m.SnapshotCorruptQuarantined.Add(1)
	return nil
}

// commit is the ingestor's durability barrier: append the validated batch to
// the WAL (and, under FsyncAlways, reach stable storage) before any in-memory
// state changes. During recovery replay the batch is already in the log, so
// the hook is a gated no-op.
func (s *Store) commit(d ingest.Delta) error {
	if !s.live.Load() {
		return nil
	}
	return s.w.Append(d.Seq, encodeListings(d.Listings))
}

// Apply lands one delta through the wrapped ingestor (WAL append first via
// the commit hook) and drives the snapshot cadence.
func (s *Store) Apply(d ingest.Delta) (ingest.Result, error) {
	res, err := s.ing.Apply(d)
	if err == nil && res.Applied && s.opts.SnapshotEvery > 0 {
		s.snapMu.Lock()
		s.sinceSnap++
		due := s.sinceSnap >= s.opts.SnapshotEvery
		if due {
			s.sinceSnap = 0
		}
		s.snapMu.Unlock()
		if due {
			if serr := s.WriteSnapshot(); serr != nil {
				// The WAL stays authoritative; a failed snapshot costs replay
				// time, not correctness. Surface it on Err().
				s.snapMu.Lock()
				s.snapErr = serr
				s.snapMu.Unlock()
			}
		}
	}
	return res, err
}

// Cursor returns the next expected delta Seq.
func (s *Store) Cursor() uint64 { return s.ing.Cursor() }

// Dataset returns the current epoch's dataset (nil before the first
// non-empty batch).
func (s *Store) Dataset() *analysis.Dataset { return s.ing.Dataset() }

// Metrics returns the store's counters (for registering on a registry).
func (s *Store) Metrics() *Metrics { return s.m }

// Err reports the most recent automatic-snapshot failure, nil when the last
// cadence snapshot (if any) succeeded.
func (s *Store) Err() error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	return s.snapErr
}

// WriteSnapshot persists the current (cursor, dataset) pair as a new
// snapshot generation and prunes old ones. Safe to call concurrently with
// Apply — the pair is read atomically and WAL records at or past the cursor
// are excluded from the blob harvest.
func (s *Store) WriteSnapshot() error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	cursor, ds := s.ing.Snapshot()
	data := &snapshotData{cursor: cursor, crawlTime: time.Time{}}
	if ds != nil {
		data.crawlTime = ds.CrawlTime
		data.records = ds.Records()
		cols, err := ds.ExportQueryColumns()
		if err != nil {
			return err
		}
		data.columns = cols
		blobs, err := s.harvestBlobs(cursor)
		if err != nil {
			return err
		}
		data.blobs = blobs
	}
	path, err := writeSnapshot(s.fsys, s.dir, data)
	if err != nil {
		return err
	}
	s.basePath = path
	s.m.LastSnapshotGeneration.Store(cursor)
	s.pruneSnapshots()
	s.snapErr = nil
	return nil
}

// harvestBlobs collects the APK bytes each ingested key was first observed
// with, for every key in the dataset at the given cursor. The previous good
// snapshot (when one exists and still loads) seeds the harvest: its blobs are
// complete for everything before its cursor, so only the WAL records between
// the two cursors are folded on top — keeping a snapshot's cost proportional
// to the tail, and keeping harvests correct even when an in-place WAL
// corruption truncated records the old snapshot already covered. With no
// usable base, the whole WAL prefix is folded from seq 0.
//
// The fold shares ingest.Kept with the live apply path, so which listing
// supplies a key's bytes cannot drift between the two. Records at or past the
// cursor (including a torn in-flight tail from a concurrent append) are
// ignored, not repaired — this is a read-only scan.
func (s *Store) harvestBlobs(cursor uint64) (map[appmeta.Key][]byte, error) {
	blobs := map[appmeta.Key][]byte{}
	seen := map[appmeta.Key]bool{}
	from := uint64(0)
	if s.basePath != "" {
		if base, err := loadSnapshotShallow(s.fsys, s.basePath); err == nil && base.cursor <= cursor {
			for k, b := range base.blobs {
				blobs[k] = b
			}
			// Seed seen with every key the base dataset held, not just blob
			// owners: a key first ingested without APK bytes must not pick
			// bytes up from a later listing during the harvest either.
			for _, r := range base.records {
				seen[r.Key()] = true
			}
			from = base.cursor
		}
	}
	next := from
	_, err := scanWAL(s.fsys, s.walPath, func(seq uint64, payload []byte) error {
		if seq < from || seq >= cursor {
			return nil
		}
		if seq != next {
			return fmt.Errorf("%w: harvest gap: record seq %d, expected %d", ErrWALCorrupt, seq, next)
		}
		next++
		listings, err := decodeListings(payload)
		if err != nil {
			return fmt.Errorf("%w: record seq %d: %v", ErrWALCorrupt, seq, err)
		}
		for _, l := range ingest.Kept(seen, listings) {
			if l.APK != nil {
				blobs[l.Record.Key()] = l.APK
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// The fold must have covered every batch between the base and the target
	// cursor: a scan that stopped early (a silently corrupted record reads as
	// a torn tail mid-log) would yield a snapshot whose blobs lie about the
	// dataset. Refuse to write it — the WAL stays authoritative and the
	// failure surfaces on Err().
	if next != cursor {
		return nil, fmt.Errorf("%w: blob harvest covered seq [%d,%d), need [%d,%d)", ErrWALCorrupt, from, next, from, cursor)
	}
	return blobs, nil
}

// pruneSnapshots removes generations beyond KeepSnapshots (best effort;
// quarantined *.corrupt files are kept for inspection).
func (s *Store) pruneSnapshots() {
	names := s.snapshotNames()
	if len(names) <= s.opts.KeepSnapshots {
		return
	}
	for _, name := range names[s.opts.KeepSnapshots:] {
		if strings.HasSuffix(name, corruptSuffix) {
			continue
		}
		_ = s.fsys.Remove(joinPath(s.dir, name))
	}
	_ = s.fsys.SyncDir(s.dir)
}

func (s *Store) syncLoop() {
	defer close(s.syncDone)
	t := time.NewTicker(s.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = s.w.Sync()
		case <-s.stopSync:
			return
		}
	}
}

// Close flushes and closes the WAL. The store must not be used afterwards.
func (s *Store) Close() error {
	var err error
	s.closeOnce.Do(func() {
		if s.stopSync != nil {
			close(s.stopSync)
			<-s.syncDone
		}
		if s.opts.Fsync != FsyncAlways {
			_ = s.w.Sync()
		}
		err = s.w.Close()
	})
	return err
}
