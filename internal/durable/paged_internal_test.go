package durable

// Unit tests for the version-2 paged snapshot format: both formats load, the
// lazy opener validates structure without touching pages, per-page checksums
// catch corruption at fetch time, multi-page columns round-trip, and files
// from a newer format version are refused with ErrSnapshotVersion (never
// quarantined, never partially adopted).

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"reflect"
	"testing"
	"time"

	"marketscope/internal/query"
)

// TestSnapshotV1StillLoads pins backward compatibility: a version-1 file (the
// pre-paging layout) must decode byte-identically even though this build
// writes version 2.
func TestSnapshotV1StillLoads(t *testing.T) {
	want := testSnapshotData()
	got, err := decodeSnapshot(encodeSnapshotV1(want))
	if err != nil {
		t.Fatalf("decode v1: %v", err)
	}
	if got.cursor != want.cursor || !got.crawlTime.Equal(want.crawlTime) {
		t.Fatalf("header mismatch: %d/%v", got.cursor, got.crawlTime)
	}
	if !reflect.DeepEqual(got.records, want.records) {
		t.Fatal("records mismatch")
	}
	if !reflect.DeepEqual(got.blobs, want.blobs) {
		t.Fatalf("blobs mismatch: %v", got.blobs)
	}
	if !reflect.DeepEqual(got.columns, want.columns) {
		t.Fatalf("columns mismatch:\n got %+v\nwant %+v", got.columns, want.columns)
	}
}

// TestSnapshotMultiPageRoundTrip shrinks pageRows so every column spans
// several pages, and requires both the eager decode and the every-flip
// detection property to hold on the multi-page layout.
func TestSnapshotMultiPageRoundTrip(t *testing.T) {
	old := pageRows
	pageRows = 2
	defer func() { pageRows = old }()

	want := testSnapshotData()
	full := encodeSnapshot(want)
	got, err := decodeSnapshot(full)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got.columns, want.columns) {
		t.Fatalf("columns mismatch:\n got %+v\nwant %+v", got.columns, want.columns)
	}
	for i := range full {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x5a
		if _, err := decodeSnapshot(mut); err == nil {
			t.Fatalf("flip at byte %d decoded cleanly", i)
		}
	}
}

// TestOpenSnapshotLazyRoundTrip writes a snapshot, opens it lazily, and
// fetches every column through the fetcher: each must equal the exported
// original exactly.
func TestOpenSnapshotLazyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := testSnapshotData()
	path, err := writeSnapshot(OSFS, dir, want)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	lz, err := openSnapshotLazy(OSFS, path)
	if err != nil {
		t.Fatalf("lazy open: %v", err)
	}
	if lz.cursor != want.cursor || !lz.crawlTime.Equal(want.crawlTime) {
		t.Fatalf("header mismatch: %d/%v", lz.cursor, lz.crawlTime)
	}
	if !reflect.DeepEqual(lz.records, want.records) {
		t.Fatal("records mismatch")
	}
	if !reflect.DeepEqual(lz.blobs, want.blobs) {
		t.Fatalf("blobs mismatch: %v", lz.blobs)
	}
	if lz.fetcher == nil {
		t.Fatal("no fetcher on a snapshot with columns")
	}
	names := lz.fetcher.Columns()
	if len(names) != len(want.columns) {
		t.Fatalf("fetcher lists %d columns, want %d", len(names), len(want.columns))
	}
	for i, wc := range want.columns {
		if names[i] != wc.Name {
			t.Fatalf("column %d is %q, want %q", i, names[i], wc.Name)
		}
		if b := lz.fetcher.ColumnBytes(wc.Name); b <= 0 {
			t.Fatalf("column %q budget charge %d", wc.Name, b)
		}
		got, err := lz.fetcher.FetchColumn(context.Background(), wc.Name)
		if err != nil {
			t.Fatalf("fetch %q: %v", wc.Name, err)
		}
		if !reflect.DeepEqual(*got, wc) {
			t.Fatalf("column %q mismatch:\n got %+v\nwant %+v", wc.Name, *got, wc)
		}
	}
	if _, err := lz.fetcher.FetchColumn(context.Background(), "no-such-column"); err == nil {
		t.Fatal("unknown column fetched")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := lz.fetcher.FetchColumn(ctx, names[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled fetch err = %v", err)
	}
}

// TestLazyFetchDetectsPageCorruption flips one byte inside the pages section
// after the lazy open validated the file: the open itself must not notice
// (pages are read lazily) but the fetch of the damaged column must fail with
// query.ErrPageCorrupt, while undamaged columns still fetch cleanly.
func TestLazyFetchDetectsPageCorruption(t *testing.T) {
	dir := t.TempDir()
	want := testSnapshotData()
	path, err := writeSnapshot(OSFS, dir, want)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	lz, err := openSnapshotLazy(OSFS, path)
	if err != nil {
		t.Fatalf("lazy open: %v", err)
	}
	first := lz.fetcher.byName[lz.fetcher.order[0]]
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the first column's first page frame.
	blob[lz.fetcher.pagesOff+int64(first.pages[0].off)+8] ^= 0x5a
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	lz2, err := openSnapshotLazy(OSFS, path)
	if err != nil {
		t.Fatalf("lazy reopen of page-corrupt file: %v", err)
	}
	if _, err := lz2.fetcher.FetchColumn(context.Background(), lz2.fetcher.order[0]); !errors.Is(err, query.ErrPageCorrupt) {
		t.Fatalf("corrupt fetch err = %v, want ErrPageCorrupt", err)
	}
	if _, err := lz2.fetcher.FetchColumn(context.Background(), lz2.fetcher.order[1]); err != nil {
		t.Fatalf("undamaged column fetch: %v", err)
	}
	// The eager loader must refuse the whole file.
	if _, err := loadSnapshotFile(OSFS, path); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("eager load of page-corrupt file err = %v", err)
	}
}

// patchHeaderVersion rewrites the version field of an encoded snapshot's
// header section and fixes the section checksum, producing a structurally
// valid file claiming a newer format.
func patchHeaderVersion(t *testing.T, buf []byte, version uint32) []byte {
	t.Helper()
	out := append([]byte(nil), buf...)
	n := binary.LittleEndian.Uint64(out[len(snapMagic)+4:])
	payload := out[len(snapMagic)+12 : len(snapMagic)+12+int(n)]
	binary.LittleEndian.PutUint32(payload, version)
	binary.LittleEndian.PutUint32(out[len(snapMagic)+12+int(n):], crc32.Checksum(payload, castagnoli))
	return out
}

// TestSnapshotFutureVersionRefused covers both refusal triggers — an unknown
// magic with the MSNAP prefix, and a known magic carrying a header version
// this build does not read — on both the eager and the lazy path. The error
// must be ErrSnapshotVersion, distinguishable from corruption.
func TestSnapshotFutureVersionRefused(t *testing.T) {
	full := encodeSnapshot(testSnapshotData())

	newerMagic := append([]byte(nil), full...)
	copy(newerMagic, "MSNAP009")
	if _, err := decodeSnapshot(newerMagic); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("newer magic eager err = %v", err)
	}
	newerHeader := patchHeaderVersion(t, full, snapVersionPaged+1)
	if _, err := decodeSnapshot(newerHeader); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("newer header eager err = %v", err)
	}
	// A non-MSNAP magic stays plain corruption.
	junkMagic := append([]byte(nil), full...)
	copy(junkMagic, "NOTSNAPS")
	if _, err := decodeSnapshot(junkMagic); !errors.Is(err, ErrSnapshotCorrupt) || errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("junk magic eager err = %v", err)
	}

	dir := t.TempDir()
	for name, blob := range map[string][]byte{
		"magic.snap":  newerMagic,
		"header.snap": newerHeader,
	} {
		path := dir + "/" + name
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := openSnapshotLazy(OSFS, path); !errors.Is(err, ErrSnapshotVersion) {
			t.Fatalf("%s lazy err = %v", name, err)
		}
		if _, err := loadSnapshotFile(OSFS, path); !errors.Is(err, ErrSnapshotVersion) {
			t.Fatalf("%s eager err = %v", name, err)
		}
	}
}

// TestSnapshotUnknownSectionRefused overwrites the records section's id with
// one no version defines: both readers must reject the file as corrupt — a
// clear error, nothing partially adopted — rather than skipping the section.
func TestSnapshotUnknownSectionRefused(t *testing.T) {
	full := encodeSnapshot(testSnapshotData())
	mut := append([]byte(nil), full...)
	n := binary.LittleEndian.Uint64(mut[len(snapMagic)+4:])
	recOff := len(snapMagic) + 12 + int(n) + 4
	binary.LittleEndian.PutUint32(mut[recOff:], 99)
	if _, err := decodeSnapshot(mut); !errors.Is(err, ErrSnapshotCorrupt) || errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("unknown section eager err = %v", err)
	}
	path := t.TempDir() + "/unknown.snap"
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openSnapshotLazy(OSFS, path); err == nil || errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("unknown section lazy err = %v", err)
	}
}

// TestWALFutureVersionRefused patches a valid WAL's magic to a newer version:
// the scan must fail with ErrWALVersion (not corruption, which would invite a
// repair truncation) and leave the file untouched.
func TestWALFutureVersionRefused(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/wal.log"
	if err := createWAL(OSFS, dir, path, time.Date(2018, 6, 1, 0, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	w, err := openWALAppender(OSFS, path, FsyncOff)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(0, encodeListings(testListings())); err != nil {
		t.Fatal(err)
	}
	w.Close()

	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	copy(blob, "MSWAL002")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := scanWAL(OSFS, path, nil); !errors.Is(err, ErrWALVersion) {
		t.Fatalf("scan err = %v, want ErrWALVersion", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(blob) {
		t.Fatalf("refused WAL changed size: %d -> %d", len(blob), len(after))
	}
}
