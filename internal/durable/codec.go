package durable

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
	"unsafe"

	"marketscope/internal/appmeta"
	"marketscope/internal/ingest"
)

// Binary primitives shared by the WAL and the snapshot format. Everything is
// little-endian and length-prefixed; the decoder carries a sticky error and
// bounds-checks every read against the remaining input, so arbitrary
// (fuzzed, truncated, bit-flipped) bytes decode to a clean error — never a
// panic and never an allocation larger than the input itself.

type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)    { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32)  { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64)  { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) i32(v int32)   { e.u32(uint32(v)) }
func (e *encoder) i64(v int64)   { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// strsPlane encodes strings planar — count, a u32 length per string, then all
// bytes concatenated — the layout decoder.strsPlane reads back with three
// allocations total.
func (e *encoder) strsPlane(ss []string) {
	e.u32(uint32(len(ss)))
	for _, s := range ss {
		e.u32(uint32(len(s)))
	}
	for _, s := range ss {
		e.buf = append(e.buf, s...)
	}
}

// timeVal encodes an instant as (Unix seconds, nanoseconds, UTC offset in
// seconds). The offset — not the zone name — is what RFC 3339 formatting and
// every comparison the engine makes observe, so the triple round-trips a
// time exactly for the engine's purposes; time.Unix handles the zero time's
// negative seconds without overflow (UnixNano would not, for extreme years).
func (e *encoder) timeVal(t time.Time) {
	_, off := t.Zone()
	e.i64(t.Unix())
	e.i32(int32(t.Nanosecond()))
	e.i32(int32(off))
}

type decoder struct {
	buf []byte
	// sview is a lazily made string view of buf. str() returns substrings of
	// it, so a section with a million strings costs zero allocations instead
	// of a million — at the price of pinning the whole input buffer for as
	// long as any decoded string lives. The view aliases buf without copying,
	// which is sound because every decoder input is a freshly read file
	// buffer (or a subslice of one) that nothing writes to afterwards; see
	// stringView.
	sview string
	off   int
	err   error
}

// stringView returns b's bytes as a string without copying. Callers own b and
// never mutate it after decoding starts — the durable read path allocates a
// fresh buffer per file read — so the aliasing is invisible. Copying instead
// (string(b)) would memmove tens of megabytes per snapshot load just to
// satisfy the string type.
func stringView(b []byte) string {
	return unsafe.String(unsafe.SliceData(b), len(b))
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }

// take returns the next n bytes of the input (aliased, not copied), or marks
// the decoder failed when fewer remain.
func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > d.remaining() {
		d.fail("durable: truncated input: need %d bytes, have %d", n, d.remaining())
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) i32() int32   { return int32(d.u32()) }
func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) bool() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("durable: invalid bool byte")
		return false
	}
}

func (d *decoder) str() string {
	n := int(d.u32())
	b := d.take(n)
	if b == nil || n == 0 {
		return ""
	}
	if d.sview == "" {
		d.sview = stringView(d.buf)
	}
	return d.sview[d.off-n : d.off]
}

// Bulk decoders: one bounds check for a whole fixed-width slice instead of a
// take() per element. Snapshot column sections hold hundreds of thousands of
// values; the per-call overhead is what recovery time is made of.

func (d *decoder) u64s(n int) []uint64 {
	b := d.take(n * 8)
	if b == nil {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}

func (d *decoder) i64s(n int) []int64 {
	b := d.take(n * 8)
	if b == nil {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func (d *decoder) f64s(n int) []float64 {
	b := d.take(n * 8)
	if b == nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func (d *decoder) u32s(n int) []uint32 {
	b := d.take(n * 4)
	if b == nil {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

func (d *decoder) i32s(n int) []int32 {
	b := d.take(n * 4)
	if b == nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

func (d *decoder) bools(n int) []bool {
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]bool, n)
	for i, v := range b {
		switch v {
		case 0:
		case 1:
			out[i] = true
		default:
			d.fail("durable: invalid bool byte")
			return nil
		}
	}
	return out
}

// strsPlane decodes n strings stored planar — a u32 length per string, then
// every string's bytes concatenated — returning substrings of the decoder's
// single string view: one allocation for the lengths, one for the slice, one
// (shared, lazy) for the view, regardless of n.
func (d *decoder) strsPlane(n int) []string {
	lens := d.u32s(n)
	if lens == nil {
		return nil
	}
	var total uint64
	for _, l := range lens {
		total += uint64(l)
	}
	if total > uint64(d.remaining()) {
		d.fail("durable: string plane of %d bytes, have %d", total, d.remaining())
		return nil
	}
	base := d.off
	if d.take(int(total)) == nil {
		return nil
	}
	if d.sview == "" && len(d.buf) > 0 {
		d.sview = stringView(d.buf)
	}
	out := make([]string, n)
	off := base
	for i, l := range lens {
		out[i] = d.sview[off : off+int(l)]
		off += int(l)
	}
	return out
}

func (d *decoder) bytes() []byte {
	n := int(d.u32())
	b := d.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// count reads a u32 element count and rejects counts that could not possibly
// fit in the remaining input (each element needs at least minBytes), so a
// corrupted length prefix cannot drive a huge allocation.
func (d *decoder) count(minBytes int) int {
	n := int(d.u32())
	if d.err != nil {
		return 0
	}
	if minBytes > 0 && n > d.remaining()/minBytes {
		d.fail("durable: implausible count %d for %d remaining bytes", n, d.remaining())
		return 0
	}
	return n
}

func (d *decoder) timeVal() time.Time {
	sec := d.i64()
	nsec := d.i32()
	off := d.i32()
	if d.err != nil {
		return time.Time{}
	}
	if nsec < 0 || nsec >= 1e9 {
		d.fail("durable: time nanoseconds %d out of range", nsec)
		return time.Time{}
	}
	t := time.Unix(sec, int64(nsec)).UTC()
	if off != 0 {
		t = t.In(time.FixedZone("", int(off)))
	}
	return t
}

// Record layout: every appmeta.Record field in declaration order. The WAL
// and the snapshot share it; its stability is part of the container formats'
// version contract (bump the magic on change).

func encodeRecord(e *encoder, r appmeta.Record) {
	e.str(r.Market)
	e.str(r.Package)
	e.str(r.AppName)
	e.str(r.Category)
	e.str(r.DeveloperName)
	e.i64(r.VersionCode)
	e.str(r.VersionName)
	e.str(r.Description)
	e.i64(r.Downloads)
	e.f64(r.Rating)
	e.timeVal(r.ReleaseDate)
	e.timeVal(r.UpdateDate)
	e.i64(r.APKSize)
	e.bool(r.HasAds)
	e.bool(r.HasIAP)
}

func decodeRecord(d *decoder) appmeta.Record {
	return appmeta.Record{
		Market:        d.str(),
		Package:       d.str(),
		AppName:       d.str(),
		Category:      d.str(),
		DeveloperName: d.str(),
		VersionCode:   d.i64(),
		VersionName:   d.str(),
		Description:   d.str(),
		Downloads:     d.i64(),
		Rating:        d.f64(),
		ReleaseDate:   d.timeVal(),
		UpdateDate:    d.timeVal(),
		APKSize:       d.i64(),
		HasAds:        d.bool(),
		HasIAP:        d.bool(),
	}
}

// Delta payload layout (the WAL record body after the seq): listing count,
// then per listing the record, a has-APK flag and the APK bytes. The flag
// preserves nil-versus-empty APKs — an empty archive is still an archive the
// parser must fail on identically after replay.

func encodeListings(listings []ingest.Listing) []byte {
	var e encoder
	e.u32(uint32(len(listings)))
	for _, l := range listings {
		encodeRecord(&e, l.Record)
		e.bool(l.APK != nil)
		if l.APK != nil {
			e.bytes(l.APK)
		}
	}
	return e.buf
}

func decodeListings(payload []byte) ([]ingest.Listing, error) {
	d := &decoder{buf: payload}
	// A listing is at least a record's fixed-width fields: 8 string lengths
	// (4 bytes each) plus 4×i64, f64, 2×time (16 each), 2 bools and the APK
	// flag — conservatively 64 bytes.
	n := d.count(64)
	listings := make([]ingest.Listing, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		l := ingest.Listing{Record: decodeRecord(d)}
		if d.bool() {
			l.APK = []byte{}
			if b := d.bytes(); b != nil {
				l.APK = b
			}
		}
		listings = append(listings, l)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("durable: %d trailing bytes after %d listings", d.remaining(), n)
	}
	return listings, nil
}
