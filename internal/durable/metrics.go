package durable

import (
	"math"
	"sync/atomic"

	"marketscope/internal/metrics"
	"marketscope/internal/query"
)

// Metrics collects the durability layer's recovery and snapshot counters.
// They are plain atomics — recovery runs before any registry exists — and
// Register mirrors them onto a metrics.Registry at scrape time so they show
// up on /metrics next to the serving instruments.
type Metrics struct {
	// WALRecordsReplayed counts records replayed from the WAL at the last
	// recovery (snapshot tail + cold-rebuild replays combined).
	WALRecordsReplayed atomic.Int64
	// WALTailTruncations counts torn tails truncated during recovery.
	WALTailTruncations atomic.Int64
	// SnapshotCorruptQuarantined counts snapshot files that failed to load
	// and were renamed aside.
	SnapshotCorruptQuarantined atomic.Int64
	// LastSnapshotGeneration is the cursor of the newest snapshot written or
	// loaded, 0 when none exists.
	LastSnapshotGeneration atomic.Uint64
	// snapshotLoadBits is the float64 bit pattern of the seconds the last
	// successful snapshot load took.
	snapshotLoadBits atomic.Uint64
	// pagePool is the store's column page pool, attached by Open when paging
	// is enabled; the paged_* gauges read through it (zero when absent).
	pagePool atomic.Pointer[query.PagePool]
}

func (m *Metrics) attachPagePool(p *query.PagePool) { m.pagePool.Store(p) }

func (m *Metrics) pageStats() query.PageStats {
	if p := m.pagePool.Load(); p != nil {
		return p.Stats()
	}
	return query.PageStats{}
}

func (m *Metrics) setSnapshotLoadSeconds(s float64) {
	m.snapshotLoadBits.Store(math.Float64bits(s))
}

// SnapshotLoadSeconds reports the duration of the last successful snapshot
// load, 0 when recovery never loaded one.
func (m *Metrics) SnapshotLoadSeconds() float64 {
	return math.Float64frombits(m.snapshotLoadBits.Load())
}

// Register publishes the counters on reg as scrape-time gauges.
func (m *Metrics) Register(reg *metrics.Registry) {
	reg.GaugeFunc("durable_wal_records_replayed",
		"WAL records replayed during the last recovery.",
		func() float64 { return float64(m.WALRecordsReplayed.Load()) })
	reg.GaugeFunc("durable_wal_tail_truncations",
		"Torn WAL tails truncated during recovery.",
		func() float64 { return float64(m.WALTailTruncations.Load()) })
	reg.GaugeFunc("durable_snapshot_load_seconds",
		"Seconds the last successful snapshot load took.",
		m.SnapshotLoadSeconds)
	reg.GaugeFunc("durable_snapshot_corrupt_quarantined",
		"Snapshot files quarantined after failing validation.",
		func() float64 { return float64(m.SnapshotCorruptQuarantined.Load()) })
	reg.GaugeFunc("durable_last_snapshot_generation",
		"Cursor of the newest snapshot generation, 0 when none.",
		func() float64 { return float64(m.LastSnapshotGeneration.Load()) })
	reg.GaugeFunc("paged_resident_bytes",
		"Decoded bytes of snapshot columns currently resident in the page pool.",
		func() float64 { return float64(m.pageStats().ResidentBytes) })
	reg.GaugeFunc("paged_fetches",
		"Column page-in fetches started (including retries' first attempts).",
		func() float64 { return float64(m.pageStats().Fetches) })
	reg.GaugeFunc("paged_evictions",
		"Resident columns evicted to stay under the page budget.",
		func() float64 { return float64(m.pageStats().Evictions) })
	reg.GaugeFunc("paged_fetch_retries",
		"Transient fetch failures retried with backoff.",
		func() float64 { return float64(m.pageStats().Retries) })
	reg.GaugeFunc("paged_quarantines",
		"Columns quarantined after checksum failure and rebuilt from rows.",
		func() float64 { return float64(m.pageStats().Quarantines) })
}
