package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"
)

// WAL file layout:
//
//	header:  "MSWAL001" | crawlTime (sec i64, nsec i32, offset i32)
//	records: repeated [ totalLen u32 | crc u32 | seq u64 | payload ]
//
// totalLen covers seq+payload; crc is CRC32-C over the same bytes. The
// crawl time lives in the header because a replayed dataset must be stamped
// with the same CrawlTime the original batches were applied under —
// otherwise the time column (and every scan touching it) would drift across
// a restart.
//
// Replay walks records until the bytes stop parsing — a short header, an
// implausible length, a truncated body or a checksum mismatch all mean the
// tail was torn mid-write — and truncates the file there. Everything before
// a torn tail is intact by construction (records are appended and fsynced in
// order), so truncation never discards an acknowledged batch under
// FsyncAlways.

const (
	walMagic       = "MSWAL001"
	walMagicPrefix = "MSWAL"
	walHeaderLen   = len(walMagic) + 16
	// maxWALRecord bounds one record's body; a length prefix beyond it is
	// treated as corruption rather than an allocation request.
	maxWALRecord = 256 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrWALCorrupt reports damage replay cannot repair by truncation (a
// corrupted header). The log's records cannot be trusted past it; recovery
// refuses to guess.
var ErrWALCorrupt = errors.New("durable: wal corrupt")

// ErrWALVersion marks a log written by a newer format version than this
// build reads. Unlike corruption there is nothing to repair — truncating or
// quarantining would destroy a newer binary's data — so Open fails and the
// file is left exactly as found.
var ErrWALVersion = errors.New("durable: wal from a newer format version")

// FsyncPolicy says when the WAL reaches stable storage relative to batch
// acknowledgements.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every appended batch, before the producer is
	// acknowledged. The strongest (and default) policy.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a timer; a crash may lose acknowledged batches
	// from the last interval.
	FsyncInterval
	// FsyncOff never syncs explicitly.
	FsyncOff
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// ParseFsyncPolicy maps the -fsync flag values to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync policy %q (want always, interval or off)", s)
}

// walScanInfo reports what a scan found.
type walScanInfo struct {
	exists    bool
	badHeader bool  // file shorter than a header (torn creation)
	tornAt    int64 // offset of the first unparseable record, -1 when clean
	crawlTime time.Time
	records   int
	lastSeq   uint64
}

// scanWAL reads the log start to end, calling fn (when non-nil) with each
// intact record in order. It never modifies the file; the caller decides
// whether to truncate a torn tail. fn's payload aliases the scan buffer and
// is only valid during the call.
func scanWAL(fsys FS, path string, fn func(seq uint64, payload []byte) error) (walScanInfo, error) {
	info := walScanInfo{tornAt: -1}
	buf, err := readWhole(fsys, path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return info, nil
		}
		return info, fmt.Errorf("durable: read wal: %w", err)
	}
	info.exists = true
	if len(buf) < walHeaderLen {
		info.badHeader = true
		return info, nil
	}
	if string(buf[:len(walMagic)]) != walMagic {
		if string(buf[:len(walMagicPrefix)]) == walMagicPrefix {
			return info, fmt.Errorf("%w: magic %q, this build reads %q",
				ErrWALVersion, buf[:len(walMagic)], walMagic)
		}
		return info, fmt.Errorf("%w: bad magic %q", ErrWALCorrupt, buf[:len(walMagic)])
	}
	hd := &decoder{buf: buf[len(walMagic):walHeaderLen]}
	info.crawlTime = hd.timeVal()
	if hd.err != nil {
		return info, fmt.Errorf("%w: header: %v", ErrWALCorrupt, hd.err)
	}

	off := walHeaderLen
	for off < len(buf) {
		if len(buf)-off < 8 {
			info.tornAt = int64(off)
			break
		}
		totalLen := int(binary.LittleEndian.Uint32(buf[off:]))
		crc := binary.LittleEndian.Uint32(buf[off+4:])
		if totalLen < 8 || totalLen > maxWALRecord || totalLen > len(buf)-off-8 {
			info.tornAt = int64(off)
			break
		}
		body := buf[off+8 : off+8+totalLen]
		if crc32.Checksum(body, castagnoli) != crc {
			info.tornAt = int64(off)
			break
		}
		seq := binary.LittleEndian.Uint64(body)
		if fn != nil {
			if err := fn(seq, body[8:]); err != nil {
				return info, err
			}
		}
		info.records++
		info.lastSeq = seq
		off += 8 + totalLen
	}
	return info, nil
}

// repairWAL truncates a torn tail in place (fsyncing the shortened file) so
// subsequent scans see only intact records. Returns whether a truncation
// happened.
func repairWAL(fsys FS, path string, info walScanInfo) (bool, error) {
	if !info.exists || info.tornAt < 0 {
		return false, nil
	}
	if err := fsys.Truncate(path, info.tornAt); err != nil {
		return false, fmt.Errorf("durable: truncate torn wal tail: %w", err)
	}
	f, err := fsys.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return false, fmt.Errorf("durable: reopen wal after truncate: %w", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return false, fmt.Errorf("durable: sync truncated wal: %w", err)
	}
	return true, nil
}

// createWAL writes a fresh log containing only the header and makes it (and
// its directory entry) durable before returning — a WAL that vanishes after
// its first acknowledged batch would break the contract at the root.
func createWAL(fsys FS, dir, path string, crawlTime time.Time) error {
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: create wal: %w", err)
	}
	var e encoder
	e.buf = append(e.buf, walMagic...)
	e.timeVal(crawlTime)
	if _, err := f.Write(e.buf); err != nil {
		f.Close()
		return fmt.Errorf("durable: write wal header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: sync wal header: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: close wal: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("durable: sync wal dir: %w", err)
	}
	return nil
}

// wal is the append handle. Any write or sync error wedges it permanently:
// after a failed append the file's tail state is unknowable, so continuing
// to acknowledge batches would acknowledge data that may not be replayable.
// The process keeps serving reads; ingest fails fast until a restart
// re-runs recovery.
type wal struct {
	mu     sync.Mutex
	f      File
	policy FsyncPolicy
	broken error
}

func openWALAppender(fsys FS, path string, policy FsyncPolicy) (*wal, error) {
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: open wal for append: %w", err)
	}
	return &wal{f: f, policy: policy}, nil
}

// Append writes one record and, under FsyncAlways, syncs before returning.
func (w *wal) Append(seq uint64, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return w.broken
	}
	if len(payload)+8 > maxWALRecord {
		return fmt.Errorf("durable: wal record of %d bytes exceeds the %d limit", len(payload), maxWALRecord)
	}
	rec := make([]byte, 0, 16+len(payload))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(8+len(payload)))
	rec = append(rec, 0, 0, 0, 0) // crc placeholder
	rec = binary.LittleEndian.AppendUint64(rec, seq)
	rec = append(rec, payload...)
	binary.LittleEndian.PutUint32(rec[4:], crc32.Checksum(rec[8:], castagnoli))
	if _, err := w.f.Write(rec); err != nil {
		w.broken = fmt.Errorf("durable: wal append failed, log wedged: %w", err)
		return w.broken
	}
	if w.policy == FsyncAlways {
		if err := w.f.Sync(); err != nil {
			w.broken = fmt.Errorf("durable: wal sync failed, log wedged: %w", err)
			return w.broken
		}
	}
	return nil
}

// Sync flushes outstanding appends (the FsyncInterval ticker's tick).
func (w *wal) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return w.broken
	}
	if err := w.f.Sync(); err != nil {
		w.broken = fmt.Errorf("durable: wal sync failed, log wedged: %w", err)
		return w.broken
	}
	return nil
}

func (w *wal) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	if w.broken == nil {
		w.broken = errors.New("durable: wal closed")
	}
	return err
}
