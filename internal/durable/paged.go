package durable

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"marketscope/internal/appmeta"
	"marketscope/internal/query"
)

// Version-2 snapshots split every column into resident metadata (section 6)
// and on-disk value pages (section 7) so a reader can serve a corpus bigger
// than RAM: openSnapshotLazy validates the file's structure — header,
// records, blobs, column metadata, footer, exact EOF — without reading a
// single value page, and the returned snapshotFetcher pages columns in on
// first touch through query's budgeted pool.
//
// A page frame is [ payloadLen u32 | crc u32 | payload ], CRC32-C over the
// payload alone, so each fetch verifies exactly the bytes it read. The page
// table (offset, payload length, row count per page) lives in the
// checksummed metadata section, which means a fetch can also detect frames
// that moved or changed length — a mismatch is corruption, not confusion.

// pageRows is the number of rows per column page. A variable, not a
// constant, so the torture suite can shrink pages and drive multi-page
// fetches on small corpora; production code must not change it after a
// snapshot has been written (readers are geometry-agnostic — the page table
// is authoritative — so mixed-geometry files still load).
var pageRows = 32768

// maxLazySection bounds a section length read from a file header before the
// payload is allocated — a corrupted length must not drive the allocation.
const maxLazySection = 1 << 31

// pageEntry locates one page frame inside the pages-section payload.
type pageEntry struct {
	off    uint64 // frame start, relative to the section payload
	length uint32 // frame payload length (excludes the 8-byte frame header)
	rows   uint32
}

// pagedColumn is one column's resident half: every structural field of the
// exported column except the value planes, plus the page table that locates
// them and the decoded-size estimate the page budget charges.
type pagedColumn struct {
	meta       query.ColumnData // value planes nil
	rows       int
	layout     uint8 // strLayoutPlain/strLayoutDict for strings, 0 otherwise
	valueBytes int64
	pages      []pageEntry
}

// columnRows is the row count of an exported column, by kind.
func columnRows(cd *query.ColumnData) int {
	switch cd.Kind {
	case query.KindInt:
		return len(cd.Ints)
	case query.KindFloat:
		return len(cd.Floats)
	case query.KindBool:
		return len(cd.Bools)
	case query.KindTime:
		return len(cd.TimeSec)
	case query.KindString:
		if cd.Dict != nil {
			return len(cd.Codes)
		}
		return len(cd.Strs)
	}
	return 0
}

// columnValueBytes estimates the decoded in-memory size of a column's value
// planes — the budget charge while the column is resident. Never zero: a
// zero charge would make a column invisible to the budget.
func columnValueBytes(cd *query.ColumnData, n int) int64 {
	var b int64
	switch cd.Kind {
	case query.KindInt, query.KindFloat:
		b = 8 * int64(n)
	case query.KindBool:
		b = int64(n)
	case query.KindTime:
		b = 24 * int64(n) // time.Time is three words
	case query.KindString:
		if cd.Dict != nil {
			b = 4 * int64(n) // codes; the dictionary stays resident
		} else {
			b = 16 * int64(n) // string headers
			for _, s := range cd.Strs {
				b += int64(len(s))
			}
		}
	}
	if b <= 0 {
		b = 1
	}
	return b
}

// buildPagedColumns splits exported columns into resident metadata and the
// pages-section payload (page frames, in column then row order).
func buildPagedColumns(cols []query.ColumnData) ([]pagedColumn, []byte) {
	metas := make([]pagedColumn, len(cols))
	var pages []byte
	for i := range cols {
		cd := &cols[i]
		n := columnRows(cd)
		m := pagedColumn{rows: n, valueBytes: columnValueBytes(cd, n)}
		m.meta = query.ColumnData{
			Name: cd.Name, Kind: cd.Kind,
			NullWords: cd.NullWords, NullCount: cd.NullCount, HasNaN: cd.HasNaN,
			Dict: cd.Dict, SegmentRows: cd.SegmentRows, Zones: cd.Zones,
			Postings: cd.Postings,
		}
		if cd.Kind == query.KindString && cd.Dict != nil {
			m.layout = strLayoutDict
		}
		for lo := 0; lo < n; lo += pageRows {
			hi := lo + pageRows
			if hi > n {
				hi = n
			}
			payload := encodePagePayload(cd, lo, hi)
			entry := pageEntry{off: uint64(len(pages)), length: uint32(len(payload)), rows: uint32(hi - lo)}
			pages = binary.LittleEndian.AppendUint32(pages, entry.length)
			pages = binary.LittleEndian.AppendUint32(pages, crc32.Checksum(payload, castagnoli))
			pages = append(pages, payload...)
			m.pages = append(m.pages, entry)
		}
		metas[i] = m
	}
	return metas, pages
}

// encodePagePayload serializes one page's slice of the value planes,
// rows [lo,hi). Time pages are planar within the page, mirroring the v1
// column layout.
func encodePagePayload(cd *query.ColumnData, lo, hi int) []byte {
	var e encoder
	switch cd.Kind {
	case query.KindInt:
		for _, v := range cd.Ints[lo:hi] {
			e.i64(v)
		}
	case query.KindFloat:
		for _, v := range cd.Floats[lo:hi] {
			e.f64(v)
		}
	case query.KindBool:
		for _, v := range cd.Bools[lo:hi] {
			e.bool(v)
		}
	case query.KindTime:
		for _, v := range cd.TimeSec[lo:hi] {
			e.i64(v)
		}
		for _, v := range cd.TimeNsec[lo:hi] {
			e.i32(v)
		}
		for _, v := range cd.TimeOff[lo:hi] {
			e.i32(v)
		}
	case query.KindString:
		if cd.Dict != nil {
			for _, v := range cd.Codes[lo:hi] {
				e.u32(v)
			}
		} else {
			e.strsPlane(cd.Strs[lo:hi])
		}
	}
	return e.buf
}

// decodePageInto decodes one page payload into rows [lo,hi) of the column's
// preallocated value planes. The payload must be an independent allocation —
// decoded strings alias it.
func decodePageInto(cd *query.ColumnData, layout uint8, lo, hi int, payload []byte) error {
	d := &decoder{buf: payload}
	n := hi - lo
	switch cd.Kind {
	case query.KindInt:
		copy(cd.Ints[lo:hi], d.i64s(n))
	case query.KindFloat:
		copy(cd.Floats[lo:hi], d.f64s(n))
	case query.KindBool:
		copy(cd.Bools[lo:hi], d.bools(n))
	case query.KindTime:
		copy(cd.TimeSec[lo:hi], d.i64s(n))
		copy(cd.TimeNsec[lo:hi], d.i32s(n))
		copy(cd.TimeOff[lo:hi], d.i32s(n))
	case query.KindString:
		if layout == strLayoutDict {
			copy(cd.Codes[lo:hi], d.u32s(n))
		} else {
			if cnt := d.count(4); d.err == nil && cnt != n {
				d.fail("page holds %d strings, want %d", cnt, n)
			}
			copy(cd.Strs[lo:hi], d.strsPlane(n))
		}
	}
	if d.err != nil {
		return d.err
	}
	if d.remaining() != 0 {
		return fmt.Errorf("page has %d trailing bytes", d.remaining())
	}
	return nil
}

// newColumnData clones the resident metadata and allocates empty value
// planes for the page decoder to fill. The metadata slices (null bitmap,
// dictionary, zones, postings) are shared, not copied — they are immutable.
func (m *pagedColumn) newColumnData() query.ColumnData {
	cd := m.meta
	n := m.rows
	switch cd.Kind {
	case query.KindInt:
		cd.Ints = make([]int64, n)
	case query.KindFloat:
		cd.Floats = make([]float64, n)
	case query.KindBool:
		cd.Bools = make([]bool, n)
	case query.KindTime:
		cd.TimeSec = make([]int64, n)
		cd.TimeNsec = make([]int32, n)
		cd.TimeOff = make([]int32, n)
	case query.KindString:
		if m.layout == strLayoutDict {
			cd.Codes = make([]uint32, n)
		} else {
			cd.Strs = make([]string, n)
		}
	}
	return cd
}

func encodeColMetaSection(metas []pagedColumn) []byte {
	var e encoder
	e.u32(uint32(len(metas)))
	for i := range metas {
		m := &metas[i]
		cd := &m.meta
		e.str(cd.Name)
		e.str(string(cd.Kind))
		e.u32(uint32(m.rows))
		e.u8(m.layout)
		e.u32(uint32(len(cd.NullWords)))
		for _, w := range cd.NullWords {
			e.u64(w)
		}
		e.u64(uint64(cd.NullCount))
		e.bool(cd.HasNaN)
		if m.layout == strLayoutDict {
			e.strsPlane(cd.Dict)
		}
		e.u32(uint32(cd.SegmentRows))
		e.u32(uint32(len(cd.Zones)))
		for _, z := range cd.Zones {
			e.i32(z.Rows)
			e.i32(z.Nulls)
			e.i32(z.MinRow)
			e.i32(z.MaxRow)
		}
		e.bool(cd.Postings != nil)
		if cd.Postings != nil {
			e.u32(uint32(len(cd.Postings)))
			for _, rows := range cd.Postings {
				e.u32(uint32(len(rows)))
				for _, r := range rows {
					e.i32(r)
				}
			}
		}
		e.u64(uint64(m.valueBytes))
		e.u32(uint32(len(m.pages)))
		for _, p := range m.pages {
			e.u64(p.off)
			e.u32(p.length)
			e.u32(p.rows)
		}
	}
	return e.buf
}

// decodeColMetaSection decodes and structurally validates the column
// metadata, including every page-table entry against the pages-section
// length — a fetch must never be pointed outside the section. Value-level
// validation (bitmap population, dictionary order, zone invariants) stays
// where it always was: query's import, run on every fetched column.
func decodeColMetaSection(payload []byte, numColumns int, pagesLen uint64) ([]pagedColumn, error) {
	d := &decoder{buf: payload}
	if n := d.count(32); d.err == nil && n != numColumns {
		d.fail("column count %d disagrees with header %d", n, numColumns)
	}
	metas := make([]pagedColumn, 0, numColumns)
	for i := 0; i < numColumns && d.err == nil; i++ {
		var m pagedColumn
		cd := &m.meta
		cd.Name = d.str()
		cd.Kind = query.Kind(d.str())
		m.rows = int(d.u32())
		m.layout = d.u8()
		cd.NullWords = d.u64s(d.count(8))
		cd.NullCount = int(d.u64())
		cd.HasNaN = d.bool()
		switch cd.Kind {
		case query.KindInt, query.KindFloat, query.KindBool, query.KindTime:
			if m.layout != 0 {
				d.fail("column %q: layout %d on kind %q", cd.Name, m.layout, cd.Kind)
			}
		case query.KindString:
			switch m.layout {
			case strLayoutDict:
				cd.Dict = d.strsPlane(d.count(4))
				if cd.Dict == nil && d.err == nil {
					cd.Dict = []string{}
				}
			case strLayoutPlain:
			default:
				d.fail("column %q: unknown string layout %d", cd.Name, m.layout)
			}
		default:
			d.fail("unknown column kind %q", cd.Kind)
		}
		cd.SegmentRows = int(d.u32())
		nz := d.count(16)
		cd.Zones = make([]query.ZoneData, 0, nz)
		for z := 0; z < nz && d.err == nil; z++ {
			cd.Zones = append(cd.Zones, query.ZoneData{
				Rows: d.i32(), Nulls: d.i32(), MinRow: d.i32(), MaxRow: d.i32(),
			})
		}
		if len(cd.Zones) == 0 {
			cd.Zones = nil
		}
		if d.bool() {
			np := d.count(4)
			cd.Postings = make([][]int32, 0, np)
			for p := 0; p < np && d.err == nil; p++ {
				cd.Postings = append(cd.Postings, d.i32s(d.count(4)))
			}
		}
		m.valueBytes = int64(d.u64())
		if d.err == nil && m.valueBytes <= 0 {
			d.fail("column %q: value-byte estimate %d", cd.Name, m.valueBytes)
		}
		npages := d.count(16)
		m.pages = make([]pageEntry, 0, npages)
		rowSum := uint64(0)
		prevEnd := uint64(0)
		for p := 0; p < npages && d.err == nil; p++ {
			entry := pageEntry{off: d.u64(), length: d.u32(), rows: d.u32()}
			if d.err != nil {
				break
			}
			end := entry.off + 8 + uint64(entry.length)
			if entry.off < prevEnd || end < entry.off || end > pagesLen {
				d.fail("column %q: page %d frame [%d,%d) outside pages section of %d bytes",
					cd.Name, p, entry.off, end, pagesLen)
				break
			}
			if entry.rows == 0 {
				d.fail("column %q: page %d holds no rows", cd.Name, p)
				break
			}
			prevEnd = end
			rowSum += uint64(entry.rows)
			m.pages = append(m.pages, entry)
		}
		if d.err == nil && rowSum != uint64(m.rows) {
			d.fail("column %q: page table covers %d rows, column has %d", cd.Name, rowSum, m.rows)
		}
		metas = append(metas, m)
	}
	if d.err == nil && d.remaining() != 0 {
		d.fail("trailing bytes")
	}
	if d.err != nil {
		return nil, corrupt("column meta: %v", d.err)
	}
	return metas, nil
}

// assembleColumnsEager materializes every column from its pages — the
// version-2 path of a full (non-lazy) snapshot load. Each page frame is
// checksum-verified exactly as a lazy fetch would.
func assembleColumnsEager(metas []pagedColumn, pages []byte) ([]query.ColumnData, error) {
	cols := make([]query.ColumnData, 0, len(metas))
	for i := range metas {
		m := &metas[i]
		cd := m.newColumnData()
		lo := 0
		for _, pg := range m.pages {
			payload, err := verifyPageFrame(pages[pg.off:pg.off+8+uint64(pg.length)], pg.length)
			if err != nil {
				return nil, corrupt("column %q page at %d: %v", m.meta.Name, pg.off, err)
			}
			hi := lo + int(pg.rows)
			if err := decodePageInto(&cd, m.layout, lo, hi, payload); err != nil {
				return nil, corrupt("column %q page at %d: %v", m.meta.Name, pg.off, err)
			}
			lo = hi
		}
		cols = append(cols, cd)
	}
	return cols, nil
}

// verifyPageFrame checks one page frame's length echo and payload checksum
// and returns the payload.
func verifyPageFrame(frame []byte, wantLen uint32) ([]byte, error) {
	if binary.LittleEndian.Uint32(frame) != wantLen {
		return nil, fmt.Errorf("frame length %d disagrees with page table %d",
			binary.LittleEndian.Uint32(frame), wantLen)
	}
	payload := frame[8:]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(frame[4:]) {
		return nil, errors.New("page checksum mismatch")
	}
	return payload, nil
}

// errSnapshotNotPaged marks a version-1 snapshot handed to the lazy opener:
// the file is valid but carries no page table, so the caller must fall back
// to the eager loader (and a fully materialized engine).
var errSnapshotNotPaged = errors.New("durable: snapshot has no paged column layout")

// lazySnapshot is the eagerly-validated half of a version-2 snapshot:
// everything recovery needs to rebuild the ingestor, plus a fetcher that
// pages the column value planes in on demand. fetcher is nil when the
// snapshot holds no columns.
type lazySnapshot struct {
	cursor    uint64
	crawlTime time.Time
	records   []appmeta.Record
	blobs     map[appmeta.Key][]byte
	fetcher   *snapshotFetcher
}

// readSectionAt reads and checksum-verifies one expected section frame at
// off, returning its payload and the offset just past the frame.
func readSectionAt(f File, off int64, wantID uint32) ([]byte, int64, error) {
	var hdr [12]byte
	if _, err := f.ReadAt(hdr[:], off); err != nil {
		return nil, 0, fmt.Errorf("durable: read section frame: %w", err)
	}
	id := binary.LittleEndian.Uint32(hdr[:])
	if id != wantID {
		return nil, 0, corrupt("section %d where %d expected", id, wantID)
	}
	n := binary.LittleEndian.Uint64(hdr[4:])
	if n > maxLazySection {
		return nil, 0, corrupt("section %d length %d implausible", id, n)
	}
	body := make([]byte, n+4)
	if _, err := f.ReadAt(body, off+12); err != nil {
		return nil, 0, fmt.Errorf("durable: read section %d: %w", id, err)
	}
	payload := body[:n]
	crc := binary.LittleEndian.Uint32(body[n:])
	if err := checkSection(id, payload, crc); err != nil {
		return nil, 0, err
	}
	return payload, off + 12 + int64(n) + 4, nil
}

// openSnapshotLazy validates a version-2 snapshot's structure — magic,
// header, records, blobs, column metadata, footer frame, exact EOF — while
// leaving the pages section untouched on disk, and returns the decoded
// eager half plus a fetcher over the pages. A version-1 file returns
// errSnapshotNotPaged; a future version returns ErrSnapshotVersion.
func openSnapshotLazy(fsys FS, path string) (*lazySnapshot, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("durable: open snapshot: %w", err)
	}
	defer f.Close()

	magic := make([]byte, len(snapMagic))
	if _, err := f.ReadAt(magic, 0); err != nil {
		return nil, corrupt("bad magic: %v", err)
	}
	if string(magic) != snapMagic {
		if string(magic[:len(snapMagicPrefix)]) == snapMagicPrefix {
			return nil, fmt.Errorf("%w: magic %q, this build reads %q", ErrSnapshotVersion, magic, snapMagic)
		}
		return nil, corrupt("bad magic")
	}
	off := int64(len(snapMagic))

	hdrPayload, off, err := readSectionAt(f, off, secHeader)
	if err != nil {
		return nil, err
	}
	hd := &decoder{buf: hdrPayload}
	version := hd.u32()
	lz := &lazySnapshot{cursor: hd.u64(), crawlTime: hd.timeVal()}
	numRecords := int(hd.u32())
	numBlobs := int(hd.u32())
	numColumns := int(hd.u32())
	if hd.err != nil {
		return nil, corrupt("header: %v", hd.err)
	}
	switch version {
	case snapVersion:
		return nil, errSnapshotNotPaged
	case snapVersionPaged:
	default:
		return nil, fmt.Errorf("%w: version %d, this build reads up to %d",
			ErrSnapshotVersion, version, snapVersionPaged)
	}

	recPayload, off, err := readSectionAt(f, off, secRecords)
	if err != nil {
		return nil, err
	}
	if lz.records, err = decodeRecordsSection(recPayload, numRecords); err != nil {
		return nil, corrupt("records: %v", err)
	}
	blobPayload, off, err := readSectionAt(f, off, secBlobs)
	if err != nil {
		return nil, err
	}
	if lz.blobs, err = decodeBlobsSection(blobPayload, numBlobs); err != nil {
		return nil, err
	}
	metaPayload, off, err := readSectionAt(f, off, secColMeta)
	if err != nil {
		return nil, err
	}

	// The pages section: read only its 12-byte frame header, record where the
	// payload starts, and skip past it. Its bytes are covered page by page.
	var hdr [12]byte
	if _, err := f.ReadAt(hdr[:], off); err != nil {
		return nil, fmt.Errorf("durable: read pages frame: %w", err)
	}
	if id := binary.LittleEndian.Uint32(hdr[:]); id != secColPages {
		return nil, corrupt("section %d where %d expected", id, secColPages)
	}
	pagesLen := binary.LittleEndian.Uint64(hdr[4:])
	if pagesLen > maxLazySection {
		return nil, corrupt("section %d length %d implausible", secColPages, pagesLen)
	}
	pagesOff := off + 12
	off = pagesOff + int64(pagesLen) + 4 // payload + section crc (unread)

	metas, err := decodeColMetaSection(metaPayload, numColumns, pagesLen)
	if err != nil {
		return nil, err
	}

	footer, off, err := readSectionAt(f, off, secFooter)
	if err != nil {
		return nil, err
	}
	if string(footer) != snapFooter {
		return nil, corrupt("bad footer")
	}
	// The footer must be the last byte of the file — trailing data means the
	// write protocol was violated and nothing about the file is trusted.
	var probe [1]byte
	if n, err := f.ReadAt(probe[:], off); err != io.EOF || n != 0 {
		return nil, corrupt("trailing bytes after footer")
	}

	if numColumns > 0 {
		sf := &snapshotFetcher{
			fsys:     fsys,
			path:     path,
			pagesOff: pagesOff,
			order:    make([]string, 0, len(metas)),
			byName:   make(map[string]*pagedColumn, len(metas)),
		}
		for i := range metas {
			m := &metas[i]
			if _, dup := sf.byName[m.meta.Name]; dup {
				return nil, corrupt("duplicate column %q", m.meta.Name)
			}
			sf.order = append(sf.order, m.meta.Name)
			sf.byName[m.meta.Name] = m
		}
		lz.fetcher = sf
	}
	return lz, nil
}

// snapshotFetcher implements query.ColumnFetcher over a version-2 snapshot:
// each fetch opens the file read-only, positioned-reads the column's page
// frames, verifies every frame checksum and decodes the planes into a
// ColumnData sharing the resident metadata. Safe for concurrent use — every
// fetch owns its handle and its buffers.
type snapshotFetcher struct {
	fsys     FS
	path     string
	pagesOff int64
	order    []string
	byName   map[string]*pagedColumn
}

func (sf *snapshotFetcher) Columns() []string {
	return append([]string(nil), sf.order...)
}

func (sf *snapshotFetcher) ColumnBytes(name string) int64 {
	if m := sf.byName[name]; m != nil {
		return m.valueBytes
	}
	return 0
}

// FetchColumn reads one column's pages. Checksum or structural failures wrap
// query.ErrPageCorrupt (the pool quarantines the column); every other error
// — open failures, short or failed reads — is transient and retried by the
// pool.
func (sf *snapshotFetcher) FetchColumn(ctx context.Context, name string) (*query.ColumnData, error) {
	m := sf.byName[name]
	if m == nil {
		return nil, fmt.Errorf("durable: snapshot has no column %q", name)
	}
	f, err := sf.fsys.OpenFile(sf.path, os.O_RDONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("durable: open snapshot for paging: %w", err)
	}
	defer f.Close()

	cd := m.newColumnData()
	lo := 0
	for _, pg := range m.pages {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		frame := make([]byte, 8+int(pg.length))
		if _, err := f.ReadAt(frame, sf.pagesOff+int64(pg.off)); err != nil {
			return nil, fmt.Errorf("durable: read column %q page at %d: %w", name, pg.off, err)
		}
		payload, err := verifyPageFrame(frame, pg.length)
		if err != nil {
			return nil, fmt.Errorf("%w: column %q page at %d: %v", query.ErrPageCorrupt, name, pg.off, err)
		}
		hi := lo + int(pg.rows)
		if err := decodePageInto(&cd, m.layout, lo, hi, payload); err != nil {
			return nil, fmt.Errorf("%w: column %q page at %d: %v", query.ErrPageCorrupt, name, pg.off, err)
		}
		lo = hi
	}
	return &cd, nil
}

// loadSnapshotShallow decodes only a snapshot's records and blobs — what the
// blob harvest needs to seed from a base generation. Version 2 gets this for
// free from the lazy opener (the pages stay on disk); version 1 falls back
// to the full load.
func loadSnapshotShallow(fsys FS, path string) (*snapshotData, error) {
	lz, err := openSnapshotLazy(fsys, path)
	if err == nil {
		return &snapshotData{cursor: lz.cursor, crawlTime: lz.crawlTime, records: lz.records, blobs: lz.blobs}, nil
	}
	if !errors.Is(err, errSnapshotNotPaged) {
		return nil, err
	}
	return loadSnapshotFile(fsys, path)
}
