package errfs

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"sync"

	"marketscope/internal/durable"
)

// ErrInjected marks every fault the injector raises.
var ErrInjected = errors.New("errfs: injected fault")

// Mode is what happens when the armed operation index is reached.
type Mode int

const (
	// ModeErr fails exactly one operation; everything after succeeds. Models
	// a transient I/O error (ENOSPC, EIO) the process survives.
	ModeErr Mode = iota
	// ModeCrash fails the armed operation and every one after it — the
	// process is dying. A failing write first lands half its bytes
	// (unsynced), so the subsequent Crash image can expose a torn record.
	ModeCrash
	// ModeShortWrite lands half the armed write's bytes, returns an error,
	// and lets later operations succeed. Models a short write the process
	// survives (and must wedge on).
	ModeShortWrite
	// ModeBitFlip lands the armed write in full with one random bit flipped
	// and reports success. Models silent media corruption; only checksums
	// can catch it. Armed on a read or readat it flips one bit of the
	// returned buffer instead, leaving the file intact — a transient
	// corruption only the reader's checksum can catch.
	ModeBitFlip
	// ModeShortRead delivers half the armed read's bytes with an error and
	// lets later operations succeed. Models a transient short read the
	// paging layer must retry.
	ModeShortRead
)

func (m Mode) String() string {
	switch m {
	case ModeErr:
		return "err"
	case ModeCrash:
		return "crash"
	case ModeShortWrite:
		return "shortwrite"
	case ModeBitFlip:
		return "bitflip"
	case ModeShortRead:
		return "shortread"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Op records one filesystem operation the injector saw.
type Op struct {
	Kind string // open, read, readat, write, sync, close, rename, remove, mkdir, readdir, truncate, syncdir
	Path string
}

// Injector wraps a MemFS, counts every I/O operation, and raises the armed
// fault when the count reaches the armed index. A recording pass (never
// armed) yields the op log; the torture suite then re-runs the same workload
// once per interesting index.
type Injector struct {
	Base *MemFS

	mu     sync.Mutex
	n      int
	log    []Op
	armed  bool
	failAt int
	mode   Mode
	rng    *rand.Rand
	hits   int
}

// NewInjector wraps base with no fault armed.
func NewInjector(base *MemFS) *Injector {
	return &Injector{Base: base}
}

// Arm schedules the fault: mode fires at the failAt-th operation (0-based).
// rng drives bit-flip positions; it may be nil for other modes.
func (i *Injector) Arm(failAt int, mode Mode, rng *rand.Rand) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.armed = true
	i.failAt = failAt
	i.mode = mode
	i.rng = rng
}

// Log returns the operations seen so far, in order.
func (i *Injector) Log() []Op {
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]Op(nil), i.log...)
}

// Hits reports how many operations the armed fault affected.
func (i *Injector) Hits() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.hits
}

type verdict int

const (
	passOp verdict = iota
	failOp
	shortOp
	flipOp
)

// step counts one operation and decides its fate.
func (i *Injector) step(kind, path string) verdict {
	i.mu.Lock()
	defer i.mu.Unlock()
	idx := i.n
	i.n++
	i.log = append(i.log, Op{Kind: kind, Path: path})
	if !i.armed {
		return passOp
	}
	switch i.mode {
	case ModeCrash:
		if idx >= i.failAt {
			i.hits++
			return failOp
		}
	case ModeErr:
		if idx == i.failAt {
			i.hits++
			return failOp
		}
	case ModeShortWrite:
		if idx == i.failAt && kind == "write" {
			i.hits++
			return shortOp
		}
	case ModeBitFlip:
		if idx == i.failAt && (kind == "write" || kind == "read" || kind == "readat") {
			i.hits++
			return flipOp
		}
	case ModeShortRead:
		if idx == i.failAt && (kind == "read" || kind == "readat") {
			i.hits++
			return shortOp
		}
	}
	return passOp
}

func injected(kind, path string) error {
	return fmt.Errorf("%w: %s %s", ErrInjected, kind, path)
}

func (i *Injector) OpenFile(name string, flag int, perm fs.FileMode) (durable.File, error) {
	switch i.step("open", name) {
	case failOp:
		return nil, injected("open", name)
	}
	f, err := i.Base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injectHandle{inj: i, f: f, path: name}, nil
}

func (i *Injector) Rename(oldpath, newpath string) error {
	if i.step("rename", oldpath) == failOp {
		return injected("rename", oldpath)
	}
	return i.Base.Rename(oldpath, newpath)
}

func (i *Injector) Remove(name string) error {
	if i.step("remove", name) == failOp {
		return injected("remove", name)
	}
	return i.Base.Remove(name)
}

func (i *Injector) MkdirAll(path string, perm fs.FileMode) error {
	if i.step("mkdir", path) == failOp {
		return injected("mkdir", path)
	}
	return i.Base.MkdirAll(path, perm)
}

func (i *Injector) ReadDir(dir string) ([]string, error) {
	if i.step("readdir", dir) == failOp {
		return nil, injected("readdir", dir)
	}
	return i.Base.ReadDir(dir)
}

func (i *Injector) Truncate(name string, size int64) error {
	if i.step("truncate", name) == failOp {
		return injected("truncate", name)
	}
	return i.Base.Truncate(name, size)
}

func (i *Injector) SyncDir(dir string) error {
	if i.step("syncdir", dir) == failOp {
		return injected("syncdir", dir)
	}
	return i.Base.SyncDir(dir)
}

type injectHandle struct {
	inj  *Injector
	f    durable.File
	path string
}

func (h *injectHandle) Read(p []byte) (int, error) {
	switch h.inj.step("read", h.path) {
	case failOp:
		return 0, injected("read", h.path)
	case shortOp:
		n, err := h.f.Read(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, injected("short read", h.path)
	case flipOp:
		n, err := h.f.Read(p)
		h.inj.flipBuf(p[:n])
		return n, err
	}
	return h.f.Read(p)
}

func (h *injectHandle) ReadAt(p []byte, off int64) (int, error) {
	switch h.inj.step("readat", h.path) {
	case failOp:
		return 0, injected("readat", h.path)
	case shortOp:
		n, err := h.f.ReadAt(p[:len(p)/2], off)
		if err != nil {
			return n, err
		}
		return n, injected("short read", h.path)
	case flipOp:
		n, err := h.f.ReadAt(p, off)
		h.inj.flipBuf(p[:n])
		return n, err
	}
	return h.f.ReadAt(p, off)
}

// flipBuf flips one random bit of buf in place (no-op on an empty buffer or a
// nil rng).
func (i *Injector) flipBuf(buf []byte) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if len(buf) == 0 || i.rng == nil {
		return
	}
	bit := i.rng.Intn(len(buf) * 8)
	buf[bit/8] ^= 1 << (bit % 8)
}

func (h *injectHandle) Write(p []byte) (int, error) {
	switch h.inj.step("write", h.path) {
	case failOp:
		// A dying process's write may still have landed a prefix in the page
		// cache; give the crash image something to tear.
		if n := len(p) / 2; n > 0 {
			_, _ = h.f.Write(p[:n])
		}
		return 0, injected("write", h.path)
	case shortOp:
		n := len(p) / 2
		if n > 0 {
			_, _ = h.f.Write(p[:n])
		}
		return n, injected("short write", h.path)
	case flipOp:
		buf := append([]byte(nil), p...)
		if len(buf) > 0 && h.inj.rng != nil {
			bit := h.inj.rng.Intn(len(buf) * 8)
			buf[bit/8] ^= 1 << (bit % 8)
		}
		return h.f.Write(buf)
	}
	return h.f.Write(p)
}

func (h *injectHandle) Sync() error {
	if h.inj.step("sync", h.path) == failOp {
		return injected("sync", h.path)
	}
	return h.f.Sync()
}

func (h *injectHandle) Close() error {
	if h.inj.step("close", h.path) == failOp {
		return injected("close", h.path)
	}
	return h.f.Close()
}
