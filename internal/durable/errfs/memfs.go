// Package errfs is the durable layer's adversary: an in-memory filesystem
// that models exactly which bytes and directory entries survive a crash, plus
// an injector that can fail, short-write or bit-flip any single I/O
// operation. The torture suite drives recovery through every failpoint with
// it and asserts the durability contract holds.
//
// The durability model is deliberately pessimistic, matching POSIX's
// guarantees rather than any filesystem's kindness:
//
//   - File content is durable only up to the byte watermark of the last
//     Sync. Unsynced bytes survive a crash as a random-length prefix (torn
//     write), decided by the rng handed to Crash.
//   - A directory entry (create, rename, remove) is durable only once the
//     parent directory has been SyncDir'd. An unsynced entry vanishes at
//     crash — content syncs alone do not save a file whose entry was never
//     committed.
//   - Directories themselves (MkdirAll) are durable immediately; the layer
//     under test creates its data directory once at startup.
package errfs

import (
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"

	"marketscope/internal/durable"
)

type memFile struct {
	data   []byte
	synced int // durable content watermark
}

// MemFS is the in-memory filesystem. The zero value is not usable; call New.
type MemFS struct {
	mu      sync.Mutex
	files   map[string]*memFile // live namespace
	dirs    map[string]bool     // live directories
	durable map[string]*memFile // entry-committed namespace (same pointers)
}

// New returns an empty filesystem.
func New() *MemFS {
	return &MemFS{
		files:   map[string]*memFile{},
		dirs:    map[string]bool{},
		durable: map[string]*memFile{},
	}
}

func parentOf(path string) string {
	i := strings.LastIndexByte(path, '/')
	if i < 0 {
		return ""
	}
	return path[:i]
}

func notExist(op, path string) error {
	return &fs.PathError{Op: op, Path: path, Err: fs.ErrNotExist}
}

func (m *MemFS) OpenFile(name string, flag int, perm fs.FileMode) (durable.File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, notExist("open", name)
		}
		if p := parentOf(name); p != "" && !m.dirs[p] {
			return nil, notExist("open", name)
		}
		f = &memFile{}
		m.files[name] = f
	}
	if flag&os.O_TRUNC != 0 {
		f.data = nil
		f.synced = 0
	}
	return &memHandle{
		fs:       m,
		f:        f,
		path:     name,
		appendTo: flag&os.O_APPEND != 0,
		writable: flag&(os.O_WRONLY|os.O_RDWR) != 0,
		readable: flag&os.O_WRONLY == 0,
	}, nil
}

func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldpath]
	if !ok {
		return notExist("rename", oldpath)
	}
	delete(m.files, oldpath)
	m.files[newpath] = f
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return notExist("remove", name)
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) MkdirAll(path string, perm fs.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for p := path; p != ""; p = parentOf(p) {
		m.dirs[p] = true
	}
	return nil
}

func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[dir] {
		return nil, notExist("readdir", dir)
	}
	var names []string
	for path := range m.files {
		if parentOf(path) == dir {
			names = append(names, path[len(dir)+1:])
		}
	}
	for path := range m.dirs {
		if path != "" && parentOf(path) == dir {
			names = append(names, path[len(dir)+1:])
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return notExist("truncate", name)
	}
	if size < 0 || size > int64(len(f.data)) {
		return fmt.Errorf("errfs: truncate %s to %d bytes (have %d)", name, size, len(f.data))
	}
	f.data = f.data[:size]
	if f.synced > int(size) {
		f.synced = int(size)
	}
	return nil
}

// SyncDir commits the directory's entry operations: after it returns, the
// crash image's view of dir matches the live view (content watermarks still
// apply per file).
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[dir] {
		return notExist("syncdir", dir)
	}
	for path, f := range m.files {
		if parentOf(path) == dir {
			m.durable[path] = f
		}
	}
	for path := range m.durable {
		if parentOf(path) == dir {
			if _, live := m.files[path]; !live {
				delete(m.durable, path)
			}
		}
	}
	return nil
}

// Crash returns the filesystem a process would find after dying right now
// and the machine losing power: committed entries only, each file's synced
// prefix plus an rng-chosen prefix of its unsynced tail (the torn write).
func (m *MemFS) Crash(rng *rand.Rand) *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	img := New()
	for d := range m.dirs {
		img.dirs[d] = true
	}
	for path, f := range m.durable {
		keep := f.synced
		if torn := len(f.data) - f.synced; torn > 0 {
			keep += rng.Intn(torn + 1)
		}
		data := append([]byte(nil), f.data[:keep]...)
		nf := &memFile{data: data, synced: len(data)}
		img.files[path] = nf
		img.durable[path] = nf
	}
	return img
}

// ReadFile returns a file's current live content (test helper).
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, notExist("read", name)
	}
	return append([]byte(nil), f.data...), nil
}

// WriteFile replaces a file's content as fully synced (test helper for
// planting corrupted bytes).
func (m *MemFS) WriteFile(name string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p := parentOf(name); p != "" && !m.dirs[p] {
		return notExist("write", name)
	}
	f := &memFile{data: append([]byte(nil), data...)}
	f.synced = len(f.data)
	m.files[name] = f
	m.durable[name] = f
	return nil
}

type memHandle struct {
	fs       *MemFS
	f        *memFile
	path     string
	pos      int
	appendTo bool
	writable bool
	readable bool
	closed   bool
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed || !h.readable {
		return 0, fmt.Errorf("errfs: read on %s: bad handle", h.path)
	}
	if h.pos >= len(h.f.data) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.pos:])
	h.pos += n
	return n, nil
}

func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed || !h.readable {
		return 0, fmt.Errorf("errfs: readat on %s: bad handle", h.path)
	}
	if off < 0 {
		return 0, fmt.Errorf("errfs: readat on %s: negative offset", h.path)
	}
	if off >= int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed || !h.writable {
		return 0, fmt.Errorf("errfs: write on %s: bad handle", h.path)
	}
	if h.appendTo {
		h.pos = len(h.f.data)
	}
	if h.pos < len(h.f.data) {
		n := copy(h.f.data[h.pos:], p)
		h.f.data = append(h.f.data, p[n:]...)
	} else {
		h.f.data = append(h.f.data, p...)
	}
	h.pos += len(p)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fmt.Errorf("errfs: sync on %s: closed handle", h.path)
	}
	h.f.synced = len(h.f.data)
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}
