package errfs

import (
	"errors"
	"io"
	"math/rand"
	"os"
	"reflect"
	"testing"

	"marketscope/internal/durable"
)

func writeAll(t *testing.T, fsys durable.FS, path string, data []byte, sync bool) durable.File {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			t.Fatalf("sync %s: %v", path, err)
		}
	}
	return f
}

func TestMemFSEntryDurability(t *testing.T) {
	m := New()
	if err := m.MkdirAll("data", 0o755); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))

	// Content synced but entry never committed: the file vanishes at crash.
	writeAll(t, m, "data/ghost", []byte("synced content"), true).Close()
	if _, err := m.Crash(rng).OpenFile("data/ghost", os.O_RDONLY, 0); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("uncommitted entry survived the crash: %v", err)
	}

	// Entry committed, content synced: survives byte for byte.
	writeAll(t, m, "data/kept", []byte("durable"), true).Close()
	if err := m.SyncDir("data"); err != nil {
		t.Fatal(err)
	}
	img := m.Crash(rng)
	got, err := img.ReadFile("data/kept")
	if err != nil || string(got) != "durable" {
		t.Fatalf("committed file after crash: %q, %v", got, err)
	}

	// Unsynced appended bytes survive as a random-length prefix: run many
	// crashes and require every observed length to be in [synced, len] with
	// at least two distinct outcomes (the tear is actually random).
	f := writeAll(t, m, "data/kept", []byte("durable"), true)
	if _, err := f.Write([]byte("+tail")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	lengths := map[int]bool{}
	for i := 0; i < 64; i++ {
		got, err := m.Crash(rng).ReadFile("data/kept")
		if err != nil {
			t.Fatalf("crash %d: %v", i, err)
		}
		if n := len(got); n < len("durable") || n > len("durable+tail") || string(got[:7]) != "durable" {
			t.Fatalf("crash %d: torn content %q", i, got)
		}
		lengths[len(got)] = true
	}
	if len(lengths) < 2 {
		t.Fatalf("torn tail never varied: %v", lengths)
	}

	// Rename is entry-level: before SyncDir the crash image sees the old
	// name, after it the new one.
	writeAll(t, m, "data/a.tmp", []byte("x"), true).Close()
	if err := m.SyncDir("data"); err != nil {
		t.Fatal(err)
	}
	if err := m.Rename("data/a.tmp", "data/a"); err != nil {
		t.Fatal(err)
	}
	img = m.Crash(rng)
	if _, err := img.ReadFile("data/a.tmp"); err != nil {
		t.Fatalf("uncommitted rename lost the old entry: %v", err)
	}
	if _, err := img.ReadFile("data/a"); err == nil {
		t.Fatal("uncommitted rename already visible after crash")
	}
	if err := m.SyncDir("data"); err != nil {
		t.Fatal(err)
	}
	img = m.Crash(rng)
	if _, err := img.ReadFile("data/a"); err != nil {
		t.Fatalf("committed rename missing after crash: %v", err)
	}
	if _, err := img.ReadFile("data/a.tmp"); err == nil {
		t.Fatal("committed rename kept the old entry")
	}

	// Remove is entry-level too.
	if err := m.Remove("data/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Crash(rng).ReadFile("data/a"); err != nil {
		t.Fatalf("uncommitted remove already durable: %v", err)
	}
	if err := m.SyncDir("data"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Crash(rng).ReadFile("data/a"); err == nil {
		t.Fatal("committed remove left the entry")
	}
}

func TestMemFSFileSemantics(t *testing.T) {
	m := New()
	if err := m.MkdirAll("d", 0o755); err != nil {
		t.Fatal(err)
	}
	writeAll(t, m, "d/f", []byte("hello world"), true).Close()

	// Read it back through a handle.
	f, err := m.OpenFile("d/f", os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(f)
	if err != nil || string(got) != "hello world" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if _, err := f.Write([]byte("nope")); err == nil {
		t.Fatal("write on a read-only handle succeeded")
	}
	f.Close()

	// Append.
	f, err = m.OpenFile("d/f", os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("!")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if got, _ := m.ReadFile("d/f"); string(got) != "hello world!" {
		t.Fatalf("after append: %q", got)
	}

	// Truncate caps content and the durable watermark.
	if err := m.Truncate("d/f", 5); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.ReadFile("d/f"); string(got) != "hello" {
		t.Fatalf("after truncate: %q", got)
	}
	if err := m.Truncate("d/f", 99); err == nil {
		t.Fatal("truncate past the end succeeded")
	}

	// ReadDir lists sorted names; missing dirs and files report ErrNotExist.
	writeAll(t, m, "d/b", nil, false).Close()
	names, err := m.ReadDir("d")
	if err != nil || !reflect.DeepEqual(names, []string{"b", "f"}) {
		t.Fatalf("ReadDir: %v, %v", names, err)
	}
	if _, err := m.ReadDir("nope"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing dir: %v", err)
	}
	if _, err := m.OpenFile("d/nope", os.O_RDONLY, 0); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: %v", err)
	}
	if _, err := m.OpenFile("nodir/x", os.O_WRONLY|os.O_CREATE, 0o644); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("create under missing dir: %v", err)
	}
}

func TestInjectorModes(t *testing.T) {
	newFS := func() (*Injector, durable.File) {
		inj := NewInjector(New())
		if err := inj.MkdirAll("d", 0o755); err != nil {
			t.Fatal(err)
		}
		f, err := inj.OpenFile("d/f", os.O_WRONLY|os.O_CREATE, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		return inj, f
	}

	// ModeErr: exactly one op fails.
	inj, f := newFS()
	inj.Arm(2, ModeErr, nil) // ops so far: mkdir=0, open=1; next write is 2
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed write: %v", err)
	}
	if _, err := f.Write([]byte("y")); err != nil {
		t.Fatalf("op after ModeErr: %v", err)
	}
	if got, _ := inj.Base.ReadFile("d/f"); string(got) != "y" {
		t.Fatalf("content after ModeErr: %q", got)
	}
	if inj.Hits() != 1 {
		t.Fatalf("hits: %d", inj.Hits())
	}

	// ModeCrash: the armed op and everything after fail; the dying write
	// lands half its bytes.
	inj, f = newFS()
	inj.Arm(2, ModeCrash, nil)
	if _, err := f.Write([]byte("abcdef")); !errors.Is(err, ErrInjected) {
		t.Fatal("crash write succeeded")
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatal("op after crash succeeded")
	}
	if _, err := inj.OpenFile("d/f", os.O_RDONLY, 0); !errors.Is(err, ErrInjected) {
		t.Fatal("open after crash succeeded")
	}
	if got, _ := inj.Base.ReadFile("d/f"); string(got) != "abc" {
		t.Fatalf("half-landed write: %q", got)
	}

	// ModeShortWrite: half lands, error returned, later ops fine.
	inj, f = newFS()
	inj.Arm(2, ModeShortWrite, nil)
	n, err := f.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after short write: %v", err)
	}

	// ModeBitFlip: the write "succeeds" with exactly one bit changed.
	inj, f = newFS()
	inj.Arm(2, ModeBitFlip, rand.New(rand.NewSource(7)))
	payload := []byte("abcdef")
	if _, err := f.Write(payload); err != nil {
		t.Fatalf("bit-flip write: %v", err)
	}
	got, _ := inj.Base.ReadFile("d/f")
	diff := 0
	for i := range got {
		for b := 0; b < 8; b++ {
			if (got[i]^payload[i])&(1<<b) != 0 {
				diff++
			}
		}
	}
	if len(got) != len(payload) || diff != 1 {
		t.Fatalf("bit flip changed %d bits (content %q)", diff, got)
	}

	// The op log records kinds and paths in order.
	log := inj.Log()
	if len(log) != 3 || log[0].Kind != "mkdir" || log[1].Kind != "open" || log[2].Kind != "write" || log[2].Path != "d/f" {
		t.Fatalf("op log: %+v", log)
	}
}
