// Package durable makes ingest crash-safe: an append-only, checksummed
// write-ahead log of listing deltas plus versioned, checksummed snapshots of
// the sealed column store, recovered on startup into an engine provably
// byte-identical to a cold build over the acknowledged delta prefix.
//
// The durability contract, by fsync policy:
//
//   - FsyncAlways: an acknowledged delta is on stable storage before the
//     producer sees the acknowledgement. kill -9, torn writes and power loss
//     lose at most deltas that were never acknowledged.
//   - FsyncInterval: acknowledgements may precede the periodic fsync by up
//     to the interval; a crash loses at most that window.
//   - FsyncOff: the OS flushes when it pleases; for benchmarks and tests.
//
// Snapshots are pure optimization: recovery without any snapshot replays the
// whole WAL through the ordinary ingest pipeline. A corrupt snapshot is
// quarantined (renamed aside, counted in metrics) and recovery falls back to
// the previous generation or the cold WAL replay — partial state is never
// served.
package durable

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// File is the I/O surface the durable layer needs from one open file.
// ReaderAt is what the lazy snapshot reader pages column segments in with:
// positioned reads that never disturb the sequential cursor, so concurrent
// fetches can share one handle.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.Closer
	Sync() error
}

// FS abstracts the filesystem so tests can inject failures, short writes and
// corruption at every call (see the errfs subpackage). Semantics mirror the
// os package; SyncDir is the directory-entry barrier an atomic-rename
// protocol needs (fsync of the directory, making creates/renames/removes in
// it durable).
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm fs.FileMode) error
	// ReadDir returns the names (not paths) of the directory's entries,
	// sorted.
	ReadDir(dir string) ([]string, error)
	Truncate(name string, size int64) error
	SyncDir(dir string) error
}

// fileReader is an optional FS fast path: one stat-presized read of a whole
// file. OSFS and the in-memory test filesystem provide it; the fault injector
// deliberately does not, so recovery-path reads stay visible to error
// injection as individual read ops.
type fileReader interface {
	ReadFile(name string) ([]byte, error)
}

// readWhole reads a file's full contents, taking the presized fast path when
// the filesystem offers one. Recovery reads whole multi-megabyte files (the
// WAL, snapshots); io.ReadAll's grow-from-512-bytes resizing is measurable
// there.
func readWhole(fsys FS, path string) ([]byte, error) {
	if fr, ok := fsys.(fileReader); ok {
		return fr.ReadFile(path)
	}
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// OSFS is the production FS backed by the os package.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error {
	return os.MkdirAll(path, perm)
}

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
