package durable_test

// Fault-injection torture suite. A recording pass runs a fixed ingest
// workload (batches, automatic snapshots, pruning) over an unarmed injector
// to enumerate every filesystem operation the store performs; the suite then
// re-runs the workload with a fault armed at sampled failpoints — process
// death, transient errors, short writes, silent bit flips — and requires the
// recovered store to be byte-identical to a cold build over the acknowledged
// prefix. Un-acked batches may be lost; acked batches never (under
// FsyncAlways), and recovery must always produce a clean prefix state, never
// a partial or corrupt one.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"marketscope/internal/durable"
	"marketscope/internal/durable/errfs"
	"marketscope/internal/ingest"
)

// tortureOpts is the workload configuration: automatic snapshots every 3
// batches (so snapshot writes, renames, prunes and dir syncs all appear among
// the failpoints) and the strict fsync policy (so "acked" implies "durable"
// and the recovery bound is exact).
func tortureOpts(t testing.TB, fsys durable.FS) durable.Options {
	_, crawlTime := deltas(t)
	opts := storeOpts(fsys, crawlTime)
	opts.SnapshotEvery = 3
	return opts
}

// runWorkload opens a store and applies every corpus delta, returning the
// cursor acknowledged to the producer before the first failure (the store is
// closed best-effort either way). err is nil only if everything — including
// Close — succeeded.
func runWorkload(t testing.TB, fsys durable.FS, ds []ingest.Delta) (acked uint64, err error) {
	s, err := durable.Open(tortureOpts(t, fsys))
	if err != nil {
		return 0, err
	}
	acked = s.Cursor()
	for _, d := range ds {
		res, aerr := s.Apply(d)
		if aerr != nil {
			s.Close()
			return acked, aerr
		}
		acked = res.Cursor
	}
	if cerr := s.Close(); cerr != nil {
		return acked, cerr
	}
	return acked, nil
}

// recordOps runs the workload once with no faults armed and returns the op
// log — the universe of failpoints.
func recordOps(t *testing.T) []errfs.Op {
	t.Helper()
	ds, _ := deltas(t)
	inj := errfs.NewInjector(errfs.New())
	acked, err := runWorkload(t, inj, ds)
	if err != nil {
		t.Fatalf("recording pass failed: %v", err)
	}
	if acked != uint64(len(ds)) {
		t.Fatalf("recording pass acked %d of %d", acked, len(ds))
	}
	return inj.Log()
}

// sampleFailpoints picks which op indices to torture: every structurally
// interesting op (renames, dir syncs, truncations, creates) plus an even
// stride over the rest, capped so the suite stays minutes-bounded. The
// sampling is deterministic — a failure report names a reproducible index.
func sampleFailpoints(log []errfs.Op, cap int) []int {
	rare := map[string]bool{"rename": true, "syncdir": true, "truncate": true, "mkdir": true}
	var picks []int
	chosen := make(map[int]bool)
	for i, op := range log {
		if rare[op.Kind] {
			picks = append(picks, i)
			chosen[i] = true
		}
	}
	rest := cap - len(picks)
	if rest < 8 {
		rest = 8
	}
	stride := len(log) / rest
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(log); i += stride {
		if !chosen[i] {
			picks = append(picks, i)
			chosen[i] = true
		}
	}
	if !chosen[len(log)-1] {
		picks = append(picks, len(log)-1)
	}
	return picks
}

// verifyRecovery opens a store over fsys (the post-fault filesystem), checks
// the acked-prefix contract against the oracle, optionally finishes the
// ingest, and returns the recovered cursor.
func verifyRecovery(t *testing.T, label string, fsys durable.FS, acked uint64, finish bool) uint64 {
	t.Helper()
	ds, _ := deltas(t)
	s, err := durable.Open(tortureOpts(t, fsys))
	if err != nil {
		t.Fatalf("%s: recovery open failed: %v", label, err)
	}
	defer s.Close()
	c := s.Cursor()
	if c < acked || c > uint64(len(ds)) {
		t.Fatalf("%s: recovered cursor %d outside [acked=%d, %d]", label, c, acked, len(ds))
	}
	requireSameState(t, sourceOf(s), oracleSource(t, c))
	if finish {
		applyAll(t, s, ds[c:])
		requireSameState(t, sourceOf(s), oracleSource(t, uint64(len(ds))))
	}
	return c
}

// TestTortureCrash kills the writer at every sampled filesystem operation:
// the op and everything after it fail (a dying write lands a random prefix of
// its bytes unsynced), the surviving durable image gets a random torn tail,
// and the store reopened on that image must serve exactly a clean acked
// prefix — then accept the rest of the stream and converge to the full state.
func TestTortureCrash(t *testing.T) {
	ds, _ := deltas(t)
	log := recordOps(t)
	max := 40
	if testing.Short() {
		max = 12
	}
	points := sampleFailpoints(log, max)
	t.Logf("torture: %d ops recorded, crashing at %d failpoints", len(log), len(points))
	rng := rand.New(rand.NewSource(20180601))
	for _, f := range points {
		label := fmt.Sprintf("crash@%d(%s %s)", f, log[f].Kind, log[f].Path)
		inj := errfs.NewInjector(errfs.New())
		inj.Arm(f, errfs.ModeCrash, rng)
		acked, err := runWorkload(t, inj, ds)
		if err == nil {
			t.Fatalf("%s: workload survived a crashed filesystem", label)
		}
		img := inj.Base.Crash(rng)
		verifyRecovery(t, label, img, acked, f%3 == 0)
	}
}

// TestTortureTransientErr injects a single failing op (the filesystem is
// healthy before and after): the store must either keep working or wedge its
// writer — and a subsequent crash+reopen must still recover the acked prefix
// and finish the stream.
func TestTortureTransientErr(t *testing.T) {
	ds, _ := deltas(t)
	log := recordOps(t)
	points := sampleFailpoints(log, 12)
	rng := rand.New(rand.NewSource(7))
	for i, f := range points {
		label := fmt.Sprintf("err@%d(%s %s)", f, log[f].Kind, log[f].Path)
		inj := errfs.NewInjector(errfs.New())
		inj.Arm(f, errfs.ModeErr, rng)
		acked, err := runWorkload(t, inj, ds)
		if err != nil && strings.Contains(log[f].Path, "snap-") {
			// Snapshot-path faults must never fail ingest: the WAL stays
			// authoritative and the failure surfaces on Err() only.
			t.Fatalf("%s: snapshot fault failed the workload: %v", label, err)
		}
		verifyRecovery(t, label, inj.Base.Crash(rng), acked, i%2 == 0)
	}
}

// TestTortureShortWrite lands half of one WAL append before erroring: the
// writer must wedge (no further batches acked over a log of unknown state)
// and recovery must truncate the torn record, serve the acked prefix, and
// accept the stream again.
func TestTortureShortWrite(t *testing.T) {
	ds, _ := deltas(t)
	log := recordOps(t)
	var walWrites []int
	for i, op := range log {
		if op.Kind == "write" && strings.Contains(op.Path, walFileName()) {
			walWrites = append(walWrites, i)
		}
	}
	if len(walWrites) < 3 {
		t.Fatalf("only %d WAL writes recorded", len(walWrites))
	}
	stride := len(walWrites)/6 + 1
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < len(walWrites); i += stride {
		f := walWrites[i]
		label := fmt.Sprintf("short@%d(%s)", f, log[f].Path)
		inj := errfs.NewInjector(errfs.New())
		inj.Arm(f, errfs.ModeShortWrite, rng)
		acked, err := runWorkload(t, inj, ds)
		if err == nil {
			t.Fatalf("%s: short write acked", label)
		}
		if acked >= uint64(len(ds)) {
			t.Fatalf("%s: all batches acked despite failure", label)
		}
		verifyRecovery(t, label, inj.Base.Crash(rng), acked, true)
	}
}

// TestTortureSnapshotBitFlip silently corrupts one bit of a snapshot write
// (the write reports success). The workload completes; reopening from the
// live filesystem must quarantine the bad generation (or find it already
// pruned), fall back, and still serve the complete state.
func TestTortureSnapshotBitFlip(t *testing.T) {
	ds, _ := deltas(t)
	log := recordOps(t)
	var snapWrites []int
	for i, op := range log {
		if op.Kind == "write" && strings.Contains(op.Path, "snap-") {
			snapWrites = append(snapWrites, i)
		}
	}
	if len(snapWrites) == 0 {
		t.Fatal("no snapshot writes recorded")
	}
	rng := rand.New(rand.NewSource(13))
	for _, f := range snapWrites {
		label := fmt.Sprintf("flip@%d(%s)", f, log[f].Path)
		inj := errfs.NewInjector(errfs.New())
		inj.Arm(f, errfs.ModeBitFlip, rng)
		acked, err := runWorkload(t, inj, ds)
		if err != nil || acked != uint64(len(ds)) {
			t.Fatalf("%s: silent corruption was not silent: acked=%d err=%v", label, acked, err)
		}
		s, err := durable.Open(tortureOpts(t, inj.Base))
		if err != nil {
			t.Fatalf("%s: reopen failed: %v", label, err)
		}
		if s.Cursor() != uint64(len(ds)) {
			t.Fatalf("%s: recovered cursor %d", label, s.Cursor())
		}
		requireSameState(t, sourceOf(s), oracleSource(t, uint64(len(ds))))
		quarantined := s.Metrics().SnapshotCorruptQuarantined.Load()
		s.Close()
		// The corrupted generation must not have been trusted: it is either
		// quarantined on disk, pruned before recovery read it, or shadowed by
		// a newer good generation recovery stopped at first. (snap names sort
		// lexically in cursor order.)
		final := strings.TrimPrefix(strings.TrimSuffix(log[f].Path, ".tmp"), "data/")
		names, err := inj.Base.ReadDir("data")
		if err != nil {
			t.Fatal(err)
		}
		alive, shadowed, hasCorrupt := false, false, false
		for _, n := range names {
			switch {
			case n == final:
				alive = true
			case strings.HasSuffix(n, ".corrupt"):
				hasCorrupt = true
			case strings.HasSuffix(n, ".snap") && n > final:
				shadowed = true
			}
		}
		if quarantined > 0 && !hasCorrupt {
			t.Fatalf("%s: quarantine counted but no .corrupt file in %v", label, names)
		}
		if quarantined == 0 && alive && !shadowed {
			t.Fatalf("%s: corrupted snapshot %s survived recovery unquarantined (%v)", label, final, names)
		}
	}
}

// TestTortureWALBitFlip silently corrupts one bit of a WAL append. The
// checksums must detect it on the next recovery: the log is truncated at the
// damaged record and the store serves a clean prefix — acked batches past the
// flip are lost, the documented weaker contract for silent in-place
// corruption — unless a snapshot already carried the state past the tear, in
// which case nothing at all may be lost. Either way the store must accept the
// stream again afterwards, including writing correct snapshots over the now
// seq-gapped log.
func TestTortureWALBitFlip(t *testing.T) {
	ds, _ := deltas(t)
	log := recordOps(t)
	var walWrites []int
	for i, op := range log {
		if op.Kind == "write" && strings.Contains(op.Path, walFileName()) {
			walWrites = append(walWrites, i)
		}
	}
	// walWrites[0] is the header write at WAL creation: a flipped magic or
	// crawl-time stamp is unrecoverable (or re-stamps the dataset) by design
	// and is pinned in the WAL unit tests, not here.
	walWrites = walWrites[1:]
	stride := len(walWrites)/6 + 1
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < len(walWrites); i += stride {
		f := walWrites[i]
		label := fmt.Sprintf("walflip@%d(%s)", f, log[f].Path)
		inj := errfs.NewInjector(errfs.New())
		inj.Arm(f, errfs.ModeBitFlip, rng)
		acked, err := runWorkload(t, inj, ds)
		if err != nil || acked != uint64(len(ds)) {
			t.Fatalf("%s: silent corruption was not silent: acked=%d err=%v", label, acked, err)
		}
		s, err := durable.Open(tortureOpts(t, inj.Base))
		if err != nil {
			t.Fatalf("%s: reopen failed: %v", label, err)
		}
		c := s.Cursor()
		if c > uint64(len(ds)) {
			t.Fatalf("%s: cursor %d past the stream", label, c)
		}
		requireSameState(t, sourceOf(s), oracleSource(t, c))
		applyAll(t, s, ds[c:])
		requireSameState(t, sourceOf(s), oracleSource(t, uint64(len(ds))))
		// A snapshot written over the seq-gapped WAL must still restore the
		// complete state (blob harvest rides the previous snapshot, not the
		// damaged log region).
		if err := s.WriteSnapshot(); err != nil {
			t.Fatalf("%s: snapshot over gapped WAL: %v", label, err)
		}
		s.Close()
		s2, err := durable.Open(tortureOpts(t, inj.Base))
		if err != nil {
			t.Fatalf("%s: reopen after gapped snapshot: %v", label, err)
		}
		requireSameState(t, sourceOf(s2), oracleSource(t, uint64(len(ds))))
		s2.Close()
	}
}

// walFileName mirrors the store's WAL file name for op-log matching without
// exporting the constant.
func walFileName() string { return "wal.log" }
