// Package crawler harvests app metadata and APKs from the simulated market
// front-ends, reproducing the collection methodology of Section 3: per-market
// crawling strategies adapted to each store's indexing behaviour, BFS
// expansion from seed packages on related-apps markets, and the "parallel
// search" strategy that immediately looks up every newly discovered package
// in all other markets so cross-market comparisons are not skewed by version
// churn between crawl times.
package crawler

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"marketscope/internal/appmeta"
	"marketscope/internal/market"
)

// Client talks to one market's HTTP API.
type Client struct {
	// MarketName is the display name used in snapshot records.
	MarketName string
	// BaseURL is the market server's root URL (no trailing slash required).
	BaseURL string
	// HTTPClient is the underlying client; nil uses a default with a 10 s
	// timeout.
	HTTPClient *http.Client
	// MaxRetries bounds retries on 429/5xx responses.
	MaxRetries int
	// RetryBackoff is the base backoff applied between retries; it grows
	// linearly with the attempt number.
	RetryBackoff time.Duration
}

// Client errors.
var (
	ErrNotFound    = errors.New("crawler: not found")
	ErrUnsupported = errors.New("crawler: endpoint not supported by this market")
	ErrRateLimited = errors.New("crawler: rate limited after retries")
)

// NewClient builds a client with sane defaults.
func NewClient(marketName, baseURL string) *Client {
	return &Client{
		MarketName:   marketName,
		BaseURL:      baseURL,
		HTTPClient:   &http.Client{Timeout: 10 * time.Second},
		MaxRetries:   6,
		RetryBackoff: 50 * time.Millisecond,
	}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// get performs a GET with retry-on-429/5xx and returns the body for 200
// responses. 404 maps to ErrNotFound and the body is discarded.
func (c *Client) get(ctx context.Context, path string, query url.Values) ([]byte, error) {
	u := c.BaseURL + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	retries := c.MaxRetries
	if retries <= 0 {
		retries = 1
	}
	backoff := c.RetryBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	var lastStatus int
	for attempt := 0; attempt < retries; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			return nil, fmt.Errorf("crawler: build request: %w", err)
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return nil, fmt.Errorf("crawler: GET %s: %w", u, err)
		}
		body, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if readErr != nil {
			return nil, fmt.Errorf("crawler: read %s: %w", u, readErr)
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			return body, nil
		case resp.StatusCode == http.StatusNotFound:
			return nil, ErrNotFound
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
			lastStatus = resp.StatusCode
			wait := backoff * time.Duration(attempt+1)
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
					// Honour the server's hint but never sleep longer than
					// a second in the simulation.
					hinted := time.Duration(secs) * time.Second
					if hinted < wait {
						wait = hinted
					}
					if wait > time.Second {
						wait = time.Second
					}
				}
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(wait):
			}
			continue
		default:
			return nil, fmt.Errorf("crawler: GET %s: unexpected status %d", u, resp.StatusCode)
		}
	}
	if lastStatus == http.StatusTooManyRequests {
		return nil, fmt.Errorf("%w: %s", ErrRateLimited, u)
	}
	return nil, fmt.Errorf("crawler: GET %s failed after %d attempts (last status %d)", u, retries, lastStatus)
}

// Info fetches the market description.
func (c *Client) Info(ctx context.Context) (market.Info, error) {
	var info market.Info
	body, err := c.get(ctx, "/api/info", nil)
	if err != nil {
		return info, err
	}
	if err := json.Unmarshal(body, &info); err != nil {
		return info, fmt.Errorf("crawler: decode info: %w", err)
	}
	return info, nil
}

// App fetches one app's metadata record.
func (c *Client) App(ctx context.Context, pkg string) (appmeta.Record, error) {
	var rec appmeta.Record
	body, err := c.get(ctx, "/api/app", url.Values{"pkg": {pkg}})
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(body, &rec); err != nil {
		return rec, fmt.Errorf("crawler: decode app %s: %w", pkg, err)
	}
	return rec, nil
}

// Download fetches the APK bytes for a package.
func (c *Client) Download(ctx context.Context, pkg string) ([]byte, error) {
	return c.get(ctx, "/api/download", url.Values{"pkg": {pkg}})
}

// Search performs a keyword search.
func (c *Client) Search(ctx context.Context, query string, limit int) ([]appmeta.Record, error) {
	v := url.Values{"q": {query}}
	if limit > 0 {
		v.Set("limit", strconv.Itoa(limit))
	}
	body, err := c.get(ctx, "/api/search", v)
	if err != nil {
		return nil, err
	}
	var recs []appmeta.Record
	if err := json.Unmarshal(body, &recs); err != nil {
		return nil, fmt.Errorf("crawler: decode search: %w", err)
	}
	return recs, nil
}

// Related fetches the related-apps list for a package (BFS markets only).
func (c *Client) Related(ctx context.Context, pkg string, limit int) ([]appmeta.Record, error) {
	v := url.Values{"pkg": {pkg}}
	if limit > 0 {
		v.Set("limit", strconv.Itoa(limit))
	}
	body, err := c.get(ctx, "/api/related", v)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return nil, ErrUnsupported
		}
		return nil, err
	}
	var recs []appmeta.Record
	if err := json.Unmarshal(body, &recs); err != nil {
		return nil, fmt.Errorf("crawler: decode related: %w", err)
	}
	return recs, nil
}

// ByIndex fetches the app at a sequential catalog index (incremental
// markets). A gap (removed app) returns ErrNotFound.
func (c *Client) ByIndex(ctx context.Context, i int) (appmeta.Record, error) {
	var rec appmeta.Record
	body, err := c.get(ctx, "/api/index", url.Values{"i": {strconv.Itoa(i)}})
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(body, &rec); err != nil {
		return rec, fmt.Errorf("crawler: decode index %d: %w", i, err)
	}
	return rec, nil
}

// Catalog fetches one page of the market's catalog listing.
func (c *Client) Catalog(ctx context.Context, page, size int) ([]appmeta.Record, error) {
	v := url.Values{"page": {strconv.Itoa(page)}, "size": {strconv.Itoa(size)}}
	body, err := c.get(ctx, "/api/catalog", v)
	if err != nil {
		return nil, err
	}
	var recs []appmeta.Record
	if err := json.Unmarshal(body, &recs); err != nil {
		return nil, fmt.Errorf("crawler: decode catalog: %w", err)
	}
	return recs, nil
}
