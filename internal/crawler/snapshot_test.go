package crawler

import (
	"testing"
	"time"

	"marketscope/internal/appmeta"
)

func sampleRecord(marketName, pkg string) appmeta.Record {
	return appmeta.Record{
		Market: marketName, Package: pkg, AppName: "App", DeveloperName: "Dev",
		Category: "Tools", VersionCode: 3, VersionName: "1.2", Downloads: 500,
		Rating: 3.5, ReleaseDate: time.Date(2016, 2, 1, 0, 0, 0, 0, time.UTC),
		UpdateDate: time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC),
	}
}

func TestSnapshotAddAndLookup(t *testing.T) {
	s := NewSnapshot(time.Date(2017, 8, 15, 0, 0, 0, 0, time.UTC))
	if err := s.AddRecord(sampleRecord("Google Play", "com.a.b")); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRecord(sampleRecord("Baidu Market", "com.a.b")); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRecord(sampleRecord("Baidu Market", "com.c.d")); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRecord(appmeta.Record{}); err == nil {
		t.Error("invalid record accepted")
	}
	if s.NumRecords() != 3 {
		t.Errorf("NumRecords = %d", s.NumRecords())
	}
	if got := s.Markets(); len(got) != 2 || got[0] != "Baidu Market" {
		t.Errorf("Markets = %v", got)
	}
	if got := s.Packages(); len(got) != 2 {
		t.Errorf("Packages = %v", got)
	}
	if got := s.RecordsForMarket("Baidu Market"); len(got) != 2 {
		t.Errorf("RecordsForMarket = %d", len(got))
	}
	key := appmeta.Key{Market: "Google Play", Package: "com.a.b"}
	if !s.Has(key) {
		t.Error("Has lost a record")
	}
	if _, ok := s.Record(key); !ok {
		t.Error("Record lookup failed")
	}
	if _, ok := s.Record(appmeta.Key{Market: "X", Package: "y"}); ok {
		t.Error("Record invented a result")
	}
}

func TestSnapshotReplacesOnRecrawl(t *testing.T) {
	s := NewSnapshot(time.Now())
	rec := sampleRecord("Google Play", "com.a.b")
	rec.VersionCode = 3
	if err := s.AddRecord(rec); err != nil {
		t.Fatal(err)
	}
	rec.VersionCode = 4
	if err := s.AddRecord(rec); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Record(rec.Key())
	if got.VersionCode != 4 {
		t.Errorf("re-crawl did not replace record: %d", got.VersionCode)
	}
	if s.NumRecords() != 1 {
		t.Errorf("duplicate keys stored: %d", s.NumRecords())
	}
}

func TestSnapshotAPKCopied(t *testing.T) {
	s := NewSnapshot(time.Now())
	key := appmeta.Key{Market: "Google Play", Package: "com.a.b"}
	data := []byte{1, 2, 3}
	s.AddAPK(key, data)
	data[0] = 99
	got, ok := s.APK(key)
	if !ok || got[0] != 1 {
		t.Error("APK bytes shared with caller")
	}
	if s.NumAPKs() != 1 {
		t.Errorf("NumAPKs = %d", s.NumAPKs())
	}
	if _, ok := s.APK(appmeta.Key{Market: "X", Package: "y"}); ok {
		t.Error("APK invented a result")
	}
}

func TestSnapshotSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := NewSnapshot(time.Date(2017, 8, 15, 12, 0, 0, 0, time.UTC))
	recA := sampleRecord("Google Play", "com.a.b")
	recB := sampleRecord("Baidu Market", "com.c.d")
	if err := s.AddRecord(recA); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRecord(recB); err != nil {
		t.Fatal(err)
	}
	s.AddAPK(recA.Key(), []byte("apk-bytes-a"))
	s.AddAPK(recB.Key(), []byte("apk-bytes-b"))

	if err := s.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.NumRecords() != 2 || loaded.NumAPKs() != 2 {
		t.Fatalf("loaded %d records %d apks", loaded.NumRecords(), loaded.NumAPKs())
	}
	if !loaded.CrawlTime.Equal(s.CrawlTime) {
		t.Errorf("crawl time = %v, want %v", loaded.CrawlTime, s.CrawlTime)
	}
	got, ok := loaded.Record(recA.Key())
	if !ok || got.AppName != recA.AppName || !got.UpdateDate.Equal(recA.UpdateDate) {
		t.Errorf("record round trip mismatch: %+v", got)
	}
	apkBytes, ok := loaded.APK(recB.Key())
	if !ok || string(apkBytes) != "apk-bytes-b" {
		t.Errorf("apk round trip mismatch: %q", apkBytes)
	}
}

func TestLoadMissingDirectory(t *testing.T) {
	if _, err := Load(t.TempDir() + "/does-not-exist"); err == nil {
		t.Error("Load accepted a missing directory")
	}
}

func TestSanitizeFileName(t *testing.T) {
	got := sanitizeFileName("Google Play/..\\weird name")
	for _, r := range got {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '-', r == '_':
		default:
			t.Fatalf("unsafe rune %q in %q", r, got)
		}
	}
}
