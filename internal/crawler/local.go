package crawler

import (
	"fmt"
	"time"

	"marketscope/internal/market"
)

// SnapshotFromStores builds a snapshot directly from in-process market
// stores, bypassing HTTP. It is the fast path used by tests, benches and the
// quickstart example; the resulting snapshot is indistinguishable from one
// produced by a network crawl of the same stores, because the store is the
// single source of truth the HTTP front-end serves.
func SnapshotFromStores(stores map[string]*market.Store, fetchAPKs bool, crawlTime time.Time) (*Snapshot, error) {
	snap := NewSnapshot(crawlTime)
	for name, store := range stores {
		for _, rec := range store.Snapshot() {
			if err := snap.AddRecord(rec); err != nil {
				return nil, fmt.Errorf("crawler: local crawl of %s: %w", name, err)
			}
			if !fetchAPKs {
				continue
			}
			data, err := store.APK(rec.Package)
			if err != nil {
				return nil, fmt.Errorf("crawler: local download of %s from %s: %w", rec.Package, name, err)
			}
			snap.AddAPK(rec.Key(), data)
		}
	}
	return snap, nil
}
