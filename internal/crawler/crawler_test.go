package crawler

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"marketscope/internal/appmeta"
	"marketscope/internal/market"
)

// testMarkets spins up HTTP servers for a small hand-built set of markets and
// returns their endpoints. Google Play carries two apps reachable via
// related-apps BFS; Baidu exposes an incremental index; Huawei only search
// and catalog pages.
func testMarkets(t *testing.T) ([]Endpoint, map[string]*market.Store) {
	t.Helper()
	mk := func(name string) *market.Store {
		p, ok := market.ProfileByName(name)
		if !ok {
			t.Fatalf("unknown market %q", name)
		}
		// Disable rate limiting for fast tests; the rate-limit path is
		// covered separately.
		p.RateLimitPerSecond = 0
		return market.NewStore(p)
	}
	rec := func(marketName, pkg, app, dev, cat string, downloads int64) appmeta.Record {
		return appmeta.Record{
			Market: marketName, Package: pkg, AppName: app, DeveloperName: dev,
			Category: cat, VersionCode: 10, VersionName: "1.0", Downloads: downloads,
			Rating: 4, ReleaseDate: time.Date(2016, 4, 1, 0, 0, 0, 0, time.UTC),
			UpdateDate: time.Date(2017, 5, 1, 0, 0, 0, 0, time.UTC),
		}
	}

	gp := mk(market.GooglePlay)
	baidu := mk("Baidu Market")
	huawei := mk("Huawei Market")

	// Google Play: seed app + one related (same developer), one unrelated.
	mustAdd(t, gp, rec(market.GooglePlay, "com.seed.app", "Seed App", "SeedDev", "Tools", 1_000_000), []byte("gp-seed"))
	mustAdd(t, gp, rec(market.GooglePlay, "com.seed.companion", "Seed Companion", "SeedDev", "Tools", 50_000), []byte("gp-companion"))
	mustAdd(t, gp, rec(market.GooglePlay, "com.lonely.app", "Lonely", "Other", "Music", 10), []byte("gp-lonely"))

	// Baidu: the seed app (cross-market) plus a Baidu-only app.
	mustAdd(t, baidu, rec("Baidu Market", "com.seed.app", "Seed App", "SeedDev", "Tools", 400_000), []byte("baidu-seed"))
	mustAdd(t, baidu, rec("Baidu Market", "com.baidu.only", "Baidu Only", "CNDev", "News", 9_000), []byte("baidu-only"))

	// Huawei: catalog contains the companion app and a Huawei-only app.
	mustAdd(t, huawei, rec("Huawei Market", "com.seed.companion", "Seed Companion", "SeedDev", "Tools", 70_000), []byte("hw-companion"))
	mustAdd(t, huawei, rec("Huawei Market", "com.huawei.only", "Huawei Only", "HWDev", "Video", 200_000), []byte("hw-only"))

	stores := map[string]*market.Store{
		market.GooglePlay: gp, "Baidu Market": baidu, "Huawei Market": huawei,
	}
	var endpoints []Endpoint
	for name, store := range stores {
		srv := httptest.NewServer(market.NewServer(store))
		t.Cleanup(srv.Close)
		endpoints = append(endpoints, Endpoint{Name: name, BaseURL: srv.URL})
	}
	return endpoints, stores
}

func mustAdd(t *testing.T, s *market.Store, r appmeta.Record, apk []byte) {
	t.Helper()
	if err := s.Add(r, apk); err != nil {
		t.Fatal(err)
	}
}

func TestCrawlerValidation(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrNoEndpoints) {
		t.Errorf("empty config: %v", err)
	}
	if _, err := New(Config{Endpoints: []Endpoint{{Name: "A"}, {Name: "A"}}}); !errors.Is(err, ErrNameClash) {
		t.Errorf("duplicate endpoints: %v", err)
	}
}

func TestCrawlFullCampaign(t *testing.T) {
	endpoints, _ := testMarkets(t)
	c, err := New(Config{
		Endpoints:      endpoints,
		Seeds:          []string{"com.seed.app"},
		Concurrency:    4,
		FetchAPKs:      true,
		ParallelSearch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	// Every listing reachable by some strategy must be present:
	// - Baidu and Huawei enumerate their whole catalogs.
	// - Google Play BFS reaches the seed and its companion via related.
	// - Parallel search carries packages across markets.
	wantKeys := []appmeta.Key{
		{Market: market.GooglePlay, Package: "com.seed.app"},
		{Market: market.GooglePlay, Package: "com.seed.companion"},
		{Market: "Baidu Market", Package: "com.seed.app"},
		{Market: "Baidu Market", Package: "com.baidu.only"},
		{Market: "Huawei Market", Package: "com.seed.companion"},
		{Market: "Huawei Market", Package: "com.huawei.only"},
	}
	for _, k := range wantKeys {
		if !snap.Has(k) {
			t.Errorf("snapshot missing %v", k)
		}
		if _, ok := snap.APK(k); !ok {
			t.Errorf("snapshot missing APK for %v", k)
		}
	}
	// com.lonely.app is not reachable from the seed by related-links (other
	// developer, other category reachable actually via category? it is
	// Music while seeds are Tools, so it is only reachable if some related
	// query returns it); do not assert either way, but the snapshot must
	// never invent records.
	for _, rec := range snap.Records() {
		if rec.Market == "" || rec.Package == "" {
			t.Errorf("invalid record in snapshot: %+v", rec)
		}
	}
	stats := c.Stats()
	if stats.RecordsFetched != int64(snap.NumRecords()) {
		t.Errorf("stats records = %d, snapshot = %d", stats.RecordsFetched, snap.NumRecords())
	}
	if stats.APKsFetched != int64(snap.NumAPKs()) {
		t.Errorf("stats apks = %d, snapshot = %d", stats.APKsFetched, snap.NumAPKs())
	}
	if stats.Requests == 0 {
		t.Error("no requests recorded")
	}
}

func TestCrawlWithoutParallelSearch(t *testing.T) {
	endpoints, _ := testMarkets(t)
	c, err := New(Config{
		Endpoints:      endpoints,
		Seeds:          []string{"com.seed.app"},
		Concurrency:    2,
		ParallelSearch: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Without parallel search, Huawei's catalog is still enumerated, but
	// Google Play's catalog is reachable only through BFS; crucially the
	// Baidu copy of com.seed.app is still found because Baidu enumerates
	// its own index. The Huawei copy of com.seed.app does not exist, so
	// nothing to miss there; instead verify that no cross-market lookups
	// were recorded for packages absent from a market's own enumeration.
	if snap.NumRecords() == 0 {
		t.Fatal("empty snapshot")
	}
	if snap.Has(appmeta.Key{Market: "Huawei Market", Package: "com.baidu.only"}) {
		t.Error("cross-market record appeared despite parallel search being disabled")
	}
}

func TestCrawlRespectsMaxAppsPerMarket(t *testing.T) {
	endpoints, _ := testMarkets(t)
	c, err := New(Config{
		Endpoints:        endpoints,
		Seeds:            []string{"com.seed.app"},
		Concurrency:      2,
		MaxAppsPerMarket: 1,
		ParallelSearch:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range snap.Markets() {
		if got := len(snap.RecordsForMarket(m)); got > 1 {
			t.Errorf("market %s has %d records, cap was 1", m, got)
		}
	}
}

func TestCrawlContextCancellation(t *testing.T) {
	endpoints, _ := testMarkets(t)
	c, err := New(Config{
		Endpoints:      endpoints,
		Seeds:          []string{"com.seed.app"},
		Concurrency:    2,
		ParallelSearch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled run returned %v", err)
	}
}

func TestCrawlerHandlesRateLimitedMarket(t *testing.T) {
	// Google Play's real profile rate-limits aggressively; the client must
	// back off and still complete.
	p, _ := market.ProfileByName(market.GooglePlay)
	p.RateLimitPerSecond = 30
	store := market.NewStore(p)
	mustAdd(t, store, appmeta.Record{
		Market: market.GooglePlay, Package: "com.seed.app", AppName: "Seed",
		DeveloperName: "Dev", Category: "Tools", VersionCode: 1, VersionName: "1.0",
		Downloads: 100, Rating: 4,
		ReleaseDate: time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC),
		UpdateDate:  time.Date(2017, 2, 1, 0, 0, 0, 0, time.UTC),
	}, []byte("apk"))
	srv := httptest.NewServer(market.NewServer(store))
	defer srv.Close()

	c, err := New(Config{
		Endpoints:      []Endpoint{{Name: market.GooglePlay, BaseURL: srv.URL}},
		Seeds:          []string{"com.seed.app"},
		Concurrency:    4,
		FetchAPKs:      true,
		ParallelSearch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("Run with rate limiting: %v", err)
	}
	if !snap.Has(appmeta.Key{Market: market.GooglePlay, Package: "com.seed.app"}) {
		t.Error("rate-limited crawl lost the seed app")
	}
}

func TestClientErrorsOnMismatchedName(t *testing.T) {
	endpoints, _ := testMarkets(t)
	// Deliberately mislabel an endpoint.
	bad := []Endpoint{{Name: "Wrong Name", BaseURL: endpoints[0].BaseURL}}
	c, err := New(Config{Endpoints: bad, Seeds: []string{"x"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err == nil {
		t.Error("mismatched endpoint name accepted")
	}
}
