package crawler

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"marketscope/internal/appmeta"
	"marketscope/internal/market"
)

// Endpoint names one market server to crawl.
type Endpoint struct {
	// Name is the market name used in snapshot records (it must match what
	// the server itself reports; the crawler verifies via /api/info).
	Name string
	// BaseURL is the server's root URL.
	BaseURL string
}

// Config configures a crawl campaign.
type Config struct {
	Endpoints []Endpoint
	// Seeds are package names used to bootstrap BFS crawling on markets
	// that only expose related-apps navigation (Google Play). The paper
	// seeds its Google Play crawl with 1.5 M package names from
	// PrivacyGrade.
	Seeds []string
	// Concurrency is the number of parallel fetch workers (default 8).
	Concurrency int
	// MaxAppsPerMarket bounds how many listings are recorded per market
	// (0 = unlimited).
	MaxAppsPerMarket int
	// FetchAPKs controls whether APK bytes are downloaded alongside
	// metadata.
	FetchAPKs bool
	// ParallelSearch enables the cross-market lookup of every newly
	// discovered package. Disabling it reproduces the naive strategy the
	// paper improves upon (used by the ablation bench).
	ParallelSearch bool
	// HTTPClient overrides the HTTP client used by all market clients.
	HTTPClient *http.Client
	// Now supplies the crawl timestamp (defaults to time.Now).
	Now func() time.Time
}

// Stats summarizes a crawl campaign.
type Stats struct {
	RecordsFetched int64
	APKsFetched    int64
	Requests       int64
	NotFound       int64
	Errors         int64
}

// Crawler runs crawl campaigns against a set of market endpoints.
type Crawler struct {
	cfg     Config
	clients map[string]*Client
	styles  map[string]market.IndexStyle
	stats   Stats
}

// Configuration errors.
var (
	ErrNoEndpoints = errors.New("crawler: no endpoints configured")
	ErrNameClash   = errors.New("crawler: duplicate endpoint name")
)

// New builds a Crawler. It does not contact the endpoints yet.
func New(cfg Config) (*Crawler, error) {
	if len(cfg.Endpoints) == 0 {
		return nil, ErrNoEndpoints
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	c := &Crawler{
		cfg:     cfg,
		clients: make(map[string]*Client, len(cfg.Endpoints)),
		styles:  make(map[string]market.IndexStyle, len(cfg.Endpoints)),
	}
	for _, ep := range cfg.Endpoints {
		if _, dup := c.clients[ep.Name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrNameClash, ep.Name)
		}
		client := NewClient(ep.Name, ep.BaseURL)
		if cfg.HTTPClient != nil {
			client.HTTPClient = cfg.HTTPClient
		}
		c.clients[ep.Name] = client
	}
	return c, nil
}

// Stats returns the cumulative campaign statistics.
func (c *Crawler) Stats() Stats {
	return Stats{
		RecordsFetched: atomic.LoadInt64(&c.stats.RecordsFetched),
		APKsFetched:    atomic.LoadInt64(&c.stats.APKsFetched),
		Requests:       atomic.LoadInt64(&c.stats.Requests),
		NotFound:       atomic.LoadInt64(&c.stats.NotFound),
		Errors:         atomic.LoadInt64(&c.stats.Errors),
	}
}

// Run executes one crawl campaign and returns the snapshot.
//
// The campaign proceeds in two stages. First, per-market enumerators discover
// package names using the indexing strategy each market supports: breadth-
// first expansion over related-apps links from the seed list, sequential
// integer indexes, or paged catalog listings. Second, every discovered
// package is (optionally) parallel-searched across all markets and its
// metadata and APK are harvested.
func (c *Crawler) Run(ctx context.Context) (*Snapshot, error) {
	snap := NewSnapshot(c.cfg.Now())

	// Learn each market's index style.
	for name, client := range c.clients {
		info, err := client.Info(ctx)
		atomic.AddInt64(&c.stats.Requests, 1)
		if err != nil {
			return nil, fmt.Errorf("crawler: fetch info for %s: %w", name, err)
		}
		if info.Name != name {
			return nil, fmt.Errorf("crawler: endpoint %q identifies itself as %q", name, info.Name)
		}
		c.styles[name] = info.IndexStyle
	}

	disc := newDiscovery()
	var wg sync.WaitGroup
	work := make(chan workItem, 1024)
	perMarketCount := map[string]*int64{}
	for name := range c.clients {
		var n int64
		perMarketCount[name] = &n
	}

	// Harvest workers.
	for i := 0; i < c.cfg.Concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for item := range work {
				c.harvest(ctx, snap, disc, work, perMarketCount, item)
			}
		}()
	}

	// Enumerators feed the work queue; a separate wait group lets us close
	// the queue once discovery has quiesced.
	var enumWG sync.WaitGroup
	for name := range c.clients {
		enumWG.Add(1)
		go func(marketName string) {
			defer enumWG.Done()
			c.enumerate(ctx, marketName, disc, work)
		}(name)
	}

	// Close the work channel when the enumerators are done AND the queue of
	// pending harvest work has drained. Because harvesting can enqueue more
	// work (parallel search), we track pending items explicitly.
	go func() {
		enumWG.Wait()
		disc.waitIdle()
		close(work)
	}()

	wg.Wait()
	if err := ctx.Err(); err != nil {
		return snap, err
	}
	return snap, nil
}

// workItem is one (market, package) pair to harvest.
type workItem struct {
	market  string
	pkg     string
	fanout  bool // whether discovering this package should trigger parallel search
	related bool // whether to expand related apps (BFS markets)
}

// discovery tracks globally discovered packages and pending work so the crawl
// terminates deterministically.
type discovery struct {
	mu      sync.Mutex
	seen    map[string]bool      // package -> discovered anywhere
	visited map[appmeta.Key]bool // (market, package) -> already harvested or queued
	pending int64
	idle    chan struct{}
}

func newDiscovery() *discovery {
	return &discovery{
		seen:    map[string]bool{},
		visited: map[appmeta.Key]bool{},
		idle:    make(chan struct{}),
	}
}

// enqueue registers intent to harvest (market, pkg); it returns false if that
// pair is already queued or done.
func (d *discovery) enqueue(key appmeta.Key) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.visited[key] {
		return false
	}
	d.visited[key] = true
	d.pending++
	return true
}

// firstSighting marks a package as globally discovered, returning true only
// for the first sighting.
func (d *discovery) firstSighting(pkg string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.seen[pkg] {
		return false
	}
	d.seen[pkg] = true
	return true
}

// done signals completion of one queued item.
func (d *discovery) done() {
	d.mu.Lock()
	d.pending--
	pending := d.pending
	d.mu.Unlock()
	if pending == 0 {
		select {
		case d.idle <- struct{}{}:
		default:
		}
	}
}

// waitIdle blocks until no work is pending. It tolerates the race where new
// work is enqueued after a zero-crossing by re-checking.
func (d *discovery) waitIdle() {
	for {
		d.mu.Lock()
		pending := d.pending
		d.mu.Unlock()
		if pending == 0 {
			return
		}
		select {
		case <-d.idle:
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// submit pushes an item if it has not been queued before. The send happens
// on its own goroutine so a harvest worker can enqueue follow-up work without
// risking deadlock when the queue is full (the pending counter tracked by
// enqueue/done keeps shutdown correct: the channel is only closed once every
// enqueued item has been fully processed, so no send can race the close).
func (c *Crawler) submit(disc *discovery, work chan<- workItem, item workItem) {
	if !disc.enqueue(appmeta.Key{Market: item.market, Package: item.pkg}) {
		return
	}
	select {
	case work <- item:
	default:
		go func() { work <- item }()
	}
}

// enumerate discovers packages in one market according to its index style.
func (c *Crawler) enumerate(ctx context.Context, marketName string, disc *discovery, work chan<- workItem) {
	client := c.clients[marketName]
	switch c.styles[marketName] {
	case market.IndexRelated:
		// BFS from the seed list; expansion happens in harvest via the
		// related flag.
		for _, pkg := range c.cfg.Seeds {
			if ctx.Err() != nil {
				return
			}
			c.submit(disc, work, workItem{market: marketName, pkg: pkg, fanout: true, related: true})
		}
	case market.IndexIncremental:
		info, err := client.Info(ctx)
		atomic.AddInt64(&c.stats.Requests, 1)
		if err != nil {
			atomic.AddInt64(&c.stats.Errors, 1)
			return
		}
		for i := 0; i < info.IndexSize; i++ {
			if ctx.Err() != nil {
				return
			}
			rec, err := client.ByIndex(ctx, i)
			atomic.AddInt64(&c.stats.Requests, 1)
			if err != nil {
				if errors.Is(err, ErrNotFound) {
					atomic.AddInt64(&c.stats.NotFound, 1)
					continue
				}
				atomic.AddInt64(&c.stats.Errors, 1)
				continue
			}
			c.submit(disc, work, workItem{market: marketName, pkg: rec.Package, fanout: true})
		}
	default: // IndexSearch and anything unknown: page through the catalog.
		const pageSize = 50
		for page := 0; ; page++ {
			if ctx.Err() != nil {
				return
			}
			recs, err := client.Catalog(ctx, page, pageSize)
			atomic.AddInt64(&c.stats.Requests, 1)
			if err != nil {
				atomic.AddInt64(&c.stats.Errors, 1)
				return
			}
			if len(recs) == 0 {
				return
			}
			for _, rec := range recs {
				c.submit(disc, work, workItem{market: marketName, pkg: rec.Package, fanout: true})
			}
		}
	}
}

// harvest fetches one (market, package) listing, optionally downloads the
// APK, triggers parallel search on first sighting, and expands related apps
// on BFS markets.
func (c *Crawler) harvest(ctx context.Context, snap *Snapshot, disc *discovery, work chan<- workItem,
	perMarket map[string]*int64, item workItem) {
	defer disc.done()
	if ctx.Err() != nil {
		return
	}
	client := c.clients[item.market]
	counter := perMarket[item.market]

	rec, err := client.App(ctx, item.pkg)
	atomic.AddInt64(&c.stats.Requests, 1)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			atomic.AddInt64(&c.stats.NotFound, 1)
		} else {
			atomic.AddInt64(&c.stats.Errors, 1)
		}
		return
	}
	if c.cfg.MaxAppsPerMarket > 0 && atomic.LoadInt64(counter) >= int64(c.cfg.MaxAppsPerMarket) {
		return
	}
	if err := snap.AddRecord(rec); err != nil {
		atomic.AddInt64(&c.stats.Errors, 1)
		return
	}
	atomic.AddInt64(counter, 1)
	atomic.AddInt64(&c.stats.RecordsFetched, 1)

	if c.cfg.FetchAPKs {
		data, err := client.Download(ctx, item.pkg)
		atomic.AddInt64(&c.stats.Requests, 1)
		if err == nil {
			snap.AddAPK(rec.Key(), data)
			atomic.AddInt64(&c.stats.APKsFetched, 1)
		} else if !errors.Is(err, ErrNotFound) {
			atomic.AddInt64(&c.stats.Errors, 1)
		}
	}

	// Parallel search: the first market to see a package immediately
	// triggers lookups in every other market.
	if item.fanout && c.cfg.ParallelSearch && disc.firstSighting(item.pkg) {
		for other := range c.clients {
			if other == item.market {
				continue
			}
			c.submit(disc, work, workItem{market: other, pkg: item.pkg})
		}
	}

	// BFS expansion on related-apps markets.
	if item.related {
		related, err := client.Related(ctx, item.pkg, 20)
		atomic.AddInt64(&c.stats.Requests, 1)
		if err == nil {
			for _, r := range related {
				c.submit(disc, work, workItem{market: item.market, pkg: r.Package, fanout: true, related: true})
			}
		} else if !errors.Is(err, ErrUnsupported) && !errors.Is(err, ErrNotFound) {
			atomic.AddInt64(&c.stats.Errors, 1)
		}
	}
}
