package crawler

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"marketscope/internal/appmeta"
)

// Snapshot is the output of one crawl campaign: every metadata record plus
// the APK bytes harvested, keyed by (market, package). It is the input of
// every analysis in the study and is safe for concurrent writers (the crawl
// workers) and subsequent read-only use.
type Snapshot struct {
	// CrawlTime records when the campaign ran.
	CrawlTime time.Time

	mu      sync.RWMutex
	records map[appmeta.Key]appmeta.Record
	apks    map[appmeta.Key][]byte
}

// NewSnapshot returns an empty snapshot stamped with the given crawl time.
func NewSnapshot(crawlTime time.Time) *Snapshot {
	return &Snapshot{
		CrawlTime: crawlTime,
		records:   make(map[appmeta.Key]appmeta.Record),
		apks:      make(map[appmeta.Key][]byte),
	}
}

// AddRecord stores a metadata record. Later records for the same key replace
// earlier ones (re-crawls observe the latest state).
func (s *Snapshot) AddRecord(rec appmeta.Record) error {
	if err := rec.Validate(); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records[rec.Key()] = rec
	return nil
}

// AddAPK stores APK bytes for a key.
func (s *Snapshot) AddAPK(key appmeta.Key, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.apks[key] = append([]byte(nil), data...)
}

// Record returns the metadata record for a key.
func (s *Snapshot) Record(key appmeta.Key) (appmeta.Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.records[key]
	return rec, ok
}

// APK returns the APK bytes for a key.
func (s *Snapshot) APK(key appmeta.Key) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.apks[key]
	return data, ok
}

// NumRecords returns the number of metadata records.
func (s *Snapshot) NumRecords() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// NumAPKs returns the number of APKs harvested.
func (s *Snapshot) NumAPKs() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.apks)
}

// Markets returns the market names present, sorted.
func (s *Snapshot) Markets() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := map[string]bool{}
	for k := range s.records {
		set[k.Market] = true
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Records returns all records sorted by market then package.
func (s *Snapshot) Records() []appmeta.Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]appmeta.Record, 0, len(s.records))
	for _, rec := range s.records {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Market != out[j].Market {
			return out[i].Market < out[j].Market
		}
		return out[i].Package < out[j].Package
	})
	return out
}

// RecordsForMarket returns the records of one market sorted by package.
func (s *Snapshot) RecordsForMarket(marketName string) []appmeta.Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []appmeta.Record
	for k, rec := range s.records {
		if k.Market == marketName {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Package < out[j].Package })
	return out
}

// Packages returns the distinct package names across all markets, sorted.
func (s *Snapshot) Packages() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := map[string]bool{}
	for k := range s.records {
		set[k.Package] = true
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Has reports whether a (market, package) record exists.
func (s *Snapshot) Has(key appmeta.Key) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.records[key]
	return ok
}

// persistedSnapshot is the on-disk JSON layout.
type persistedSnapshot struct {
	CrawlTime time.Time         `json:"crawl_time"`
	Records   []appmeta.Record  `json:"records"`
	APKs      map[string]string `json:"apk_files"`
}

// Save writes the snapshot to a directory: metadata in snapshot.json and each
// APK in apks/<market>__<package>.apk. The directory is created if needed.
func (s *Snapshot) Save(dir string) error {
	apkDir := filepath.Join(dir, "apks")
	if err := os.MkdirAll(apkDir, 0o755); err != nil {
		return fmt.Errorf("snapshot: create %s: %w", apkDir, err)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	p := persistedSnapshot{CrawlTime: s.CrawlTime, APKs: map[string]string{}}
	for _, rec := range s.records {
		p.Records = append(p.Records, rec)
	}
	sort.Slice(p.Records, func(i, j int) bool {
		if p.Records[i].Market != p.Records[j].Market {
			return p.Records[i].Market < p.Records[j].Market
		}
		return p.Records[i].Package < p.Records[j].Package
	})
	for key, data := range s.apks {
		name := sanitizeFileName(key.Market) + "__" + sanitizeFileName(key.Package) + ".apk"
		if err := os.WriteFile(filepath.Join(apkDir, name), data, 0o644); err != nil {
			return fmt.Errorf("snapshot: write apk %s: %w", name, err)
		}
		p.APKs[key.Market+"|"+key.Package] = filepath.Join("apks", name)
	}
	blob, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("snapshot: marshal: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snapshot.json"), blob, 0o644); err != nil {
		return fmt.Errorf("snapshot: write snapshot.json: %w", err)
	}
	return nil
}

// Load reads a snapshot previously written by Save.
func Load(dir string) (*Snapshot, error) {
	blob, err := os.ReadFile(filepath.Join(dir, "snapshot.json"))
	if err != nil {
		return nil, fmt.Errorf("snapshot: read snapshot.json: %w", err)
	}
	var p persistedSnapshot
	if err := json.Unmarshal(blob, &p); err != nil {
		return nil, fmt.Errorf("snapshot: parse snapshot.json: %w", err)
	}
	s := NewSnapshot(p.CrawlTime)
	for _, rec := range p.Records {
		if err := s.AddRecord(rec); err != nil {
			return nil, err
		}
	}
	for key, rel := range p.APKs {
		parts := strings.SplitN(key, "|", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("snapshot: malformed apk key %q", key)
		}
		data, err := os.ReadFile(filepath.Join(dir, rel))
		if err != nil {
			return nil, fmt.Errorf("snapshot: read apk %s: %w", rel, err)
		}
		s.AddAPK(appmeta.Key{Market: parts[0], Package: parts[1]}, data)
	}
	return s, nil
}

func sanitizeFileName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}
