package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	g := r.Gauge("inflight", "inflight requests")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters only go up
	g.Set(3)
	g.Add(-1)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 2 {
		t.Fatalf("gauge = %d, want 2", g.Value())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1, 1})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	// 100 samples spread evenly inside (0.001, 0.01].
	for i := 0; i < 100; i++ {
		h.Observe(0.005)
	}
	p50 := h.Quantile(0.5)
	if p50 <= 0.001 || p50 > 0.01 {
		t.Fatalf("p50 = %g, want inside (0.001, 0.01]", p50)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-0.5) > 1e-9 {
		t.Fatalf("sum = %g, want 0.5", h.Sum())
	}
	// A slow outlier in +Inf territory clamps to the top finite bound.
	h2 := NewHistogram([]float64{0.001, 0.01})
	h2.Observe(5)
	if got := h2.Quantile(0.99); got != 0.01 {
		t.Fatalf("+Inf bucket quantile = %g, want clamp to 0.01", got)
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	h := NewHistogram(DefaultLatencyBounds())
	for _, v := range []float64{0.0002, 0.0002, 0.0002, 0.0002, 0.0002, 0.0002, 0.0002, 0.0002, 0.0002, 0.2} {
		h.Observe(v)
	}
	p50, p99 := h.Quantile(0.5), h.Quantile(0.99)
	if p50 >= p99 {
		t.Fatalf("p50 %g >= p99 %g", p50, p99)
	}
	if p99 < 0.1 {
		t.Fatalf("p99 = %g, should land in the outlier's bucket", p99)
	}
}

func TestConcurrentObserve(t *testing.T) {
	h := NewHistogram(DefaultLatencyBounds())
	c := &Counter{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || c.Value() != 8000 {
		t.Fatalf("count = %d, counter = %d, want 8000", h.Count(), c.Value())
	}
	if math.Abs(h.Sum()-8.0) > 1e-6 {
		t.Fatalf("sum = %g, want 8.0", h.Sum())
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("marketscope_requests_total", "total requests")
	c.Add(7)
	g := r.Gauge("marketscope_inflight", "inflight")
	g.Set(2)
	r.GaugeFunc("marketscope_hit_rate", "cache hit rate", func() float64 { return 0.25 })
	h := r.Histogram("marketscope_latency_seconds", "latency", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE marketscope_requests_total counter",
		"marketscope_requests_total 7",
		"marketscope_inflight 2",
		"marketscope_hit_rate 0.25",
		`marketscope_latency_seconds_bucket{le="0.001"} 1`,
		`marketscope_latency_seconds_bucket{le="+Inf"} 2`,
		"marketscope_latency_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("x", "")
}
