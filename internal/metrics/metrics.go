// Package metrics is a small, dependency-free instrumentation library in the
// Prometheus style: counters, gauges and latency histograms collected in a
// registry that renders the text exposition format. The market server's
// /metrics endpoint is its consumer; nothing here knows about HTTP semantics
// beyond writing to an io.Writer.
//
// All types are safe for concurrent use. Observation is cheap — counters and
// gauges are single atomics, a histogram observation is one atomic add into a
// fixed bucket plus two for sum/count — so the serving hot path can record
// every request without a measurable tax.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored; counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down (inflight requests, queue depth).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add applies a delta.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets (cumulative, Prometheus
// style) and tracks their sum, so quantiles can be estimated without keeping
// samples. Buckets are chosen at construction and immutable afterwards.
type Histogram struct {
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Int64
	sum    atomicFloat
	count  atomic.Int64
}

// atomicFloat is a float64 accumulated via CAS on its bit pattern.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// DefaultLatencyBounds covers 100µs to ~26s in powers of two — the request
// latency range a query server plausibly spans.
func DefaultLatencyBounds() []float64 {
	bounds := make([]float64, 0, 19)
	for v := 0.0001; v < 30; v *= 2 {
		bounds = append(bounds, v)
	}
	return bounds
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// Quantile estimates the q-quantile (q in [0, 1]) by linear interpolation
// inside the bucket holding it, the same estimate Prometheus'
// histogram_quantile computes. It returns 0 with no observations; samples in
// the +Inf bucket clamp to the highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) {
				// +Inf bucket: no upper bound to interpolate toward.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			within := rank - float64(cum)
			return lo + (hi-lo)*(within/float64(n))
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// metric is one named entry a registry renders.
type metric struct {
	name string
	help string
	typ  string
	c    *Counter
	g    *Gauge
	fn   func() float64
	h    *Histogram
}

// Registry holds named metrics and renders them in registration order.
type Registry struct {
	mu      sync.Mutex
	entries []*metric
	byName  map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*metric{}}
}

func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name]; dup {
		panic("metrics: duplicate metric " + m.name)
	}
	r.byName[m.name] = m
	r.entries = append(r.entries, m)
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, typ: "counter", c: c})
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, typ: "gauge", g: g})
	return g
}

// GaugeFunc registers a gauge computed at scrape time (hit rates, QPS over
// uptime — anything derived from other metrics).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, typ: "gauge", fn: fn})
}

// Histogram registers and returns a new histogram over the given bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.register(&metric{name: name, help: help, typ: "histogram", h: h})
	return h
}

// WritePrometheus renders every metric in the text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	entries := append([]*metric(nil), r.entries...)
	r.mu.Unlock()
	for _, m := range entries {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ); err != nil {
			return err
		}
		var err error
		switch {
		case m.c != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.c.Value())
		case m.g != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.g.Value())
		case m.fn != nil:
			_, err = fmt.Fprintf(w, "%s %s\n", m.name, formatFloat(m.fn()))
		case m.h != nil:
			err = writeHistogram(w, m.name, m.h)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, h *Histogram) error {
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(bound), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	return err
}

func formatFloat(v float64) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
