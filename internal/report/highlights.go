package report

import (
	"fmt"
	"strings"

	"marketscope/internal/analysis"
)

// Highlights renders the in-text findings of the paper that are not numbered
// tables or figures: download concentration (Section 4.2), the ad-ecosystem
// concentration (Section 4.4), single-/multi-store catalog overlap
// (Section 5.2), store-introduced APK differences (Section 5.3) and the share
// of malware that is also repackaged (Section 6.4).
func Highlights(
	concentration []analysis.TopShareStats,
	adGP, adCN analysis.AdEcosystemStats,
	overlap []analysis.StoreOverlapRow,
	identical analysis.IdenticalAppStats,
	repackaged analysis.RepackagedMalwareStats,
	publishing analysis.PublishingStats,
) string {
	var sb strings.Builder
	title := "Section highlights (in-text findings)"
	sb.WriteString(title + "\n" + strings.Repeat("=", len(title)) + "\n")

	// Download concentration (Section 4.2).
	var worst analysis.TopShareStats
	for _, c := range concentration {
		if c.TopTenthPct > worst.TopTenthPct {
			worst = c
		}
	}
	if worst.Market != "" {
		fmt.Fprintf(&sb, "downloads: the top 0.1%% of apps hold up to %.0f%% of a market's installs (%s); ",
			100*worst.TopTenthPct, worst.Market)
	}
	var avgTop1 float64
	counted := 0
	for _, c := range concentration {
		if c.TopOnePct > 0 {
			avgTop1 += c.TopOnePct
			counted++
		}
	}
	if counted > 0 {
		fmt.Fprintf(&sb, "the top 1%% hold %.0f%% on average across markets.\n", 100*avgTop1/float64(counted))
	} else {
		sb.WriteString("\n")
	}

	// Ad ecosystem concentration (Section 4.4).
	if adGP.TopAdLibrary != "" {
		fmt.Fprintf(&sb, "ad ecosystem: %s holds %.0f%% of Google Play ad embeddings",
			adGP.TopAdLibrary, 100*adGP.TopAdShare)
	}
	if adCN.TopAdLibrary != "" {
		fmt.Fprintf(&sb, "; the Chinese market is more fragmented (%s leads with %.0f%% across %d ad libraries).\n",
			adCN.TopAdLibrary, 100*adCN.TopAdShare, adCN.DistinctAdLibraries)
	} else {
		sb.WriteString(".\n")
	}

	// Developer split (Section 5.1).
	fmt.Fprintf(&sb, "developers: %.0f%% of Google Play developers never publish to a Chinese store; %.0f%% of Chinese-store developers skip Google Play.\n",
		100*publishing.GPDevsNotInChineseShare, 100*publishing.ChineseDevsNotOnGPShare)

	// Catalog overlap (Section 5.2).
	var gpSingle float64
	var cnSharedSum float64
	cnCount := 0
	for _, row := range overlap {
		if row.Market == "Google Play" {
			gpSingle = row.SingleStoreShare
		} else if row.Apps > 0 {
			cnSharedSum += row.SharedWithGooglePlayShare
			cnCount++
		}
	}
	if cnCount > 0 {
		fmt.Fprintf(&sb, "catalogs: %.0f%% of Google Play apps are single-store; on average %.0f%% of a Chinese store's catalog is also on Google Play.\n",
			100*gpSingle, 100*cnSharedSum/float64(cnCount))
	}

	// Store-introduced differences (Section 5.3).
	if identical.Triples > 0 {
		fmt.Fprintf(&sb, "store-introduced differences: %d of %d identical (package, version, developer) triples ship with different archive hashes across markets (channel files, mandated repacking).\n",
			identical.HashMismatchTriples, identical.Triples)
	}

	// Repackaged malware (Section 6.4).
	if repackaged.FlaggedPackages > 0 {
		fmt.Fprintf(&sb, "repackaged malware: %d of %d flagged packages (%.0f%%) are also detected clones.\n",
			repackaged.RepackagedFlagged, repackaged.FlaggedPackages, 100*repackaged.RepackagedShare)
	}
	return sb.String()
}
