package report

import (
	"fmt"
	"time"

	"marketscope/internal/market"
)

// ServeStats renders one market server's serving counters — the shutdown
// summary marketsim prints per market, mirroring what the server's /metrics
// endpoint exposes while it runs.
func ServeStats(name string, st market.ServingStats) string {
	t := newTable("Serving stats: " + name)
	t.row("Metric", "Value")
	t.row("requests", fmt.Sprint(st.Requests))
	t.row("p50 latency", fmtLatency(st.P50))
	t.row("p99 latency", fmtLatency(st.P99))
	t.row("cache hits", fmt.Sprint(st.CacheHits))
	t.row("cache misses", fmt.Sprint(st.CacheMisses))
	t.row("cache hit rate", pct(st.HitRate))
	t.row("cache bytes", fmt.Sprint(st.CacheBytes))
	t.row("cache entries", fmt.Sprint(st.CacheCount))
	t.row("shed (503)", fmt.Sprint(st.Shed))
	t.row("rate limited (429)", fmt.Sprint(st.RateLimited))
	t.row("timeouts (504)", fmt.Sprint(st.Timeouts))
	return t.String()
}

func fmtLatency(d time.Duration) string {
	if d <= 0 {
		return "-"
	}
	return d.Round(time.Microsecond).String()
}
