package report

import (
	"strings"
	"testing"

	"marketscope/internal/query"
)

func TestScanTable(t *testing.T) {
	res := &query.Result{
		Fields: []query.FieldInfo{
			{Name: "package", Category: "metadata", Kind: query.KindString},
			{Name: "downloads", Category: "metadata", Kind: query.KindInt, Nullable: true},
			{Name: "rating", Category: "metadata", Kind: query.KindFloat},
			{Name: "flagged", Category: "enrichment", Kind: query.KindBool},
		},
		Rows: [][]any{
			{"com.example.a", int64(120000), 4.5, true},
			{"com.example.b", nil, float64(3), false},
		},
		Meta: query.Meta{Scanned: 500, TotalMatched: 2, Returned: 2, QueryTimeMicros: 42},
	}
	out := ScanTable("scan", res)
	for _, want := range []string{"package", "com.example.a", "120000", "4.5", "yes",
		"com.example.b", "2 of 500 listings matched"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// The null downloads cell renders as "-".
	line := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "com.example.b") {
			line = l
		}
	}
	if !strings.Contains(line, "-") {
		t.Errorf("null cell not rendered as '-': %q", line)
	}
	// A float64-typed integer (JSON-decoded) renders without a trailing .0.
	if strings.Contains(out, "3.0") {
		t.Errorf("JSON-decoded int rendered with fraction:\n%s", out)
	}
}

func TestScanFields(t *testing.T) {
	out := ScanFields([]query.FieldInfo{
		{Name: "market", Category: "metadata", Kind: query.KindString, Indexable: true, Doc: "hosting market"},
		{Name: "av_positives", Category: "enrichment", Kind: query.KindInt, Nullable: true, Doc: "AV-rank"},
	})
	for _, want := range []string{"market", "metadata", "av_positives", "enrichment", "AV-rank", "Idx?", "yes"} {
		if !strings.Contains(out, want) {
			t.Errorf("fields listing missing %q:\n%s", want, out)
		}
	}
}

// TestScanTableWithExplain checks the planner path's meta line counts
// candidate rows (the old Scanned meaning) and ScanExplain renders the plan.
func TestScanTableWithExplain(t *testing.T) {
	res := &query.Result{
		Fields: []query.FieldInfo{{Name: "package", Category: "metadata", Kind: query.KindString}},
		Rows:   [][]any{{"com.example.a"}},
		Meta: query.Meta{Scanned: 12, TotalMatched: 1, Returned: 1, QueryTimeMicros: 3,
			Explain: &query.Explain{IndexUsed: "hash(market)", DatasetRows: 500, Candidates: 12, ResidualScanned: 12}},
	}
	out := ScanTable("scan", res)
	// The denominator stays the dataset size even though the index pruned
	// the scan to 12 candidate rows.
	if !strings.Contains(out, "1 of 500 listings matched") {
		t.Errorf("explain-backed meta line wrong:\n%s", out)
	}
	ex := ScanExplain(res.Meta)
	for _, want := range []string{"index=hash(market)", "rows=500", "candidates=12", "residual_scanned=12", "evaluated=12"} {
		if !strings.Contains(ex, want) {
			t.Errorf("explain rendering missing %q: %q", want, ex)
		}
	}
	if got := ScanExplain(query.Meta{}); !strings.Contains(got, "oracle") {
		t.Errorf("explain of oracle meta = %q", got)
	}
}

func TestAggregateTable(t *testing.T) {
	res := &query.Result{
		Fields: []query.FieldInfo{
			{Name: "market", Category: "metadata", Kind: query.KindString},
			{Name: "count", Category: query.FieldCategoryAggregate, Kind: query.KindInt},
			{Name: "share", Category: query.FieldCategoryAggregate, Kind: query.KindFloat},
			{Name: "min(rating)", Category: query.FieldCategoryAggregate, Kind: query.KindFloat},
		},
		Rows: [][]any{
			{"Google Play", int64(120), 0.25, 1.5},
			{"Tencent Myapp", int64(80), 0.75, nil},
		},
		Meta: query.Meta{Scanned: 0, TotalMatched: 200, Returned: 2, QueryTimeMicros: 9,
			Explain: &query.Explain{IndexUsed: "", DatasetRows: 480, Candidates: 480}},
	}
	out := AggregateTable("aggregate", res)
	for _, want := range []string{"market", "count", "share", "min(rating)",
		"Google Play", "120", "0.25", "2 groups from 200 of 480 listings"} {
		if !strings.Contains(out, want) {
			t.Errorf("aggregate table missing %q:\n%s", want, out)
		}
	}
	// The null min cell renders as "-".
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "Tencent Myapp") && !strings.Contains(l, "-") {
			t.Errorf("null aggregate cell not rendered as '-': %q", l)
		}
	}
}
