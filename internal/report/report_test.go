package report

import (
	"strings"
	"testing"

	"marketscope/internal/analysis"
	"marketscope/internal/appmeta"
	"marketscope/internal/libdetect"
	"marketscope/internal/market"
)

func gpProfile(t *testing.T) market.Profile {
	t.Helper()
	p, ok := market.ProfileByName(market.GooglePlay)
	if !ok {
		t.Fatal("missing Google Play profile")
	}
	return p
}

func TestTable1ContainsMarketsAndTotals(t *testing.T) {
	rows := []analysis.MarketOverviewRow{
		{Profile: gpProfile(t), Apps: 100, APKs: 90, AggregatedDownloads: 5_000_000_000, Developers: 40, UniqueDeveloperShare: 0.57},
	}
	totals := analysis.OverviewTotals{Apps: 100, APKs: 90, AggregatedDownloads: 5_000_000_000, Developers: 40}
	out := Table1(rows, totals)
	for _, want := range []string{"Table 1", "Google Play", "5.00 B", "57.00%", "TOTAL"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1ListsAllCategories(t *testing.T) {
	out := Figure1([]analysis.CategoryDistribution{
		{Market: "Google Play", Shares: map[appmeta.Category]float64{appmeta.CategoryGame: 0.5}},
	})
	for _, want := range []string{"Figure 1", "Game", "Null/Other", "50.00%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure1 missing %q", want)
		}
	}
}

func TestFigure2IncludesBins(t *testing.T) {
	out := Figure2([]analysis.DownloadRow{{Market: "Baidu Market"}})
	for _, want := range []string{"0-10", ">1M", "Baidu Market"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure2 missing %q", want)
		}
	}
}

func TestFigures3And4(t *testing.T) {
	gp := analysis.APILevelDistribution{Group: "Google Play", Shares: map[int]float64{9: 0.3}, LowAPIShare: 0.22, Parsed: 10}
	cn := analysis.APILevelDistribution{Group: "Chinese markets", Shares: map[int]float64{8: 0.5}, LowAPIShare: 0.63, Parsed: 20}
	out := Figure3(gp, cn)
	if !strings.Contains(out, "22.00%") || !strings.Contains(out, "63.00%") {
		t.Errorf("Figure3 missing low-API shares:\n%s", out)
	}
	rgp := analysis.ReleaseDateDistribution{Group: "gp", Shares: map[string]float64{"before 2017": 0.66}, RecentShare: 0.23, Total: 10}
	rcn := analysis.ReleaseDateDistribution{Group: "cn", Shares: map[string]float64{"before 2017": 0.9}, RecentShare: 0.05, Total: 10}
	out = Figure4(rgp, rcn)
	if !strings.Contains(out, "66.00%") || !strings.Contains(out, "5.00%") {
		t.Errorf("Figure4 missing shares:\n%s", out)
	}
}

func TestTable2AndFigure5(t *testing.T) {
	gp := []analysis.LibraryRank{{Name: "Google Mobile Services", Category: libdetect.CategoryDevelopment, Share: 0.66}}
	cn := []analysis.LibraryRank{{Name: "Umeng", Category: libdetect.CategoryAnalytics, Share: 0.165}}
	out := Table2(gp, cn)
	if !strings.Contains(out, "Google Mobile Services") || !strings.Contains(out, "Umeng") {
		t.Errorf("Table2 missing libraries:\n%s", out)
	}
	out = Figure5([]analysis.LibraryUsageRow{{Market: "360 Market", ShareWithLibraries: 0.95, AvgLibraries: 20, Parsed: 5}})
	if !strings.Contains(out, "360 Market") || !strings.Contains(out, "20.00") {
		t.Errorf("Figure5 wrong:\n%s", out)
	}
}

func TestFigures6Through9(t *testing.T) {
	out := Figure6([]analysis.RatingDistribution{{
		Market: "PC Online", UnratedShare: 0.1, HighShare: 0.2, DefaultBandShare: 0.5,
		Points: make([]float64, 11), CDF: make([]float64, 11), Total: 10,
	}})
	if !strings.Contains(out, "PC Online") || !strings.Contains(out, "50.00%") {
		t.Errorf("Figure6 wrong:\n%s", out)
	}
	out = Figure7(analysis.PublishingStats{Developers: 5, MarketsPerDeveloperCDF: []float64{0.4, 1},
		SingleMarketShare: 0.4, GPDevsNotInChineseShare: 0.57})
	if !strings.Contains(out, "57.00%") {
		t.Errorf("Figure7 wrong:\n%s", out)
	}
	out = Figure8(analysis.ClusterCDFs{
		VersionsPerPackage: []float64{0.86, 1}, NameClusterSizePoints: []float64{1, 2},
		NameClusterSize: []float64{0.7, 1}, DevelopersPerPackage: []float64{0.88, 1},
		MultiVersionShare: 0.14, MultiDeveloperShare: 0.12, SameNameShare: 0.22,
	})
	for _, want := range []string{"14.00%", "12.00%", "22.00%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure8 missing %q", want)
		}
	}
	out = Figure9([]analysis.OutdatedRow{{Market: "Google Play", UpToDateShare: 0.954, MultiStoreApps: 100}})
	if !strings.Contains(out, "95.40%") {
		t.Errorf("Figure9 wrong:\n%s", out)
	}
}

func TestTable3AndFigure10(t *testing.T) {
	res := &analysis.MisbehaviorResult{
		Rows: []analysis.MisbehaviorRow{
			{Market: "Google Play", FakeShare: 0.0003, SignatureCloneShare: 0.04, CodeCloneShare: 0.178, Apps: 100},
		},
		AvgFakeShare: 0.006, AvgSigShare: 0.07, AvgCodeShare: 0.196,
	}
	out := Table3(res)
	if !strings.Contains(out, "17.80%") || !strings.Contains(out, "Average") {
		t.Errorf("Table3 wrong:\n%s", out)
	}
	heat := map[string]map[string]int{"Google Play": {"25PP": 7}}
	out = Figure10(heat, []string{"Google Play", "25PP"})
	if !strings.Contains(out, "7") || !strings.Contains(out, "GPlay") {
		t.Errorf("Figure10 wrong:\n%s", out)
	}
}

func TestFigure11AndMalwareTables(t *testing.T) {
	gp := analysis.OverPrivilegeStats{Group: "gp", OverPrivilegedShare: 0.65,
		Distribution: map[int]float64{0: 0.35, 3: 0.2}, Parsed: 10}
	cn := analysis.OverPrivilegeStats{Group: "cn", OverPrivilegedShare: 0.82,
		Distribution: map[int]float64{3: 0.3}, Parsed: 10,
		TopUnused: []analysis.PermissionShare{{Permission: "android.permission.READ_PHONE_STATE", Share: 0.52}}}
	out := Figure11(gp, cn)
	if !strings.Contains(out, "82.00%") || !strings.Contains(out, "READ_PHONE_STATE") {
		t.Errorf("Figure11 wrong:\n%s", out)
	}

	rows := []analysis.MalwareRow{{Market: "PC Online", ShareAtLeast1: 0.55, ShareAtLeast10: 0.24, ShareAtLeast20: 0.08, Parsed: 100}}
	out = Table4(rows, analysis.MalwareAverages{ShareAtLeast10: 0.123})
	if !strings.Contains(out, "24.00%") || !strings.Contains(out, "12.30%") {
		t.Errorf("Table4 wrong:\n%s", out)
	}
	out = Table5([]analysis.TopMalwareEntry{{Package: "com.ypt.merchant", AVRank: 46, Family: "ramnit",
		Markets: []string{"Tencent Myapp", "25PP"}}})
	if !strings.Contains(out, "com.ypt.merchant") || !strings.Contains(out, "ramnit") {
		t.Errorf("Table5 wrong:\n%s", out)
	}
	out = Figure12([]analysis.FamilyShare{{Family: "airpush", Share: 0.29}},
		[]analysis.FamilyShare{{Family: "kuguo", Share: 0.127}})
	if !strings.Contains(out, "airpush") || !strings.Contains(out, "kuguo") {
		t.Errorf("Figure12 wrong:\n%s", out)
	}
	out = Table6([]analysis.RemovalRow{{Market: "Wandoujia", RemovedShare: 0.3451, FlaggedFirstCrawl: 200}},
		analysis.StillHostedStats{GPRemovedMalware: 100, StillHostedSomewhere: 70, Share: 0.7})
	if !strings.Contains(out, "34.51%") || !strings.Contains(out, "70.00%") {
		t.Errorf("Table6 wrong:\n%s", out)
	}
}

func TestFigure13(t *testing.T) {
	out := Figure13([]analysis.RadarRow{{Market: "Huawei Market",
		Values: map[analysis.RadarMetric]float64{analysis.MetricMalware: 12.5}}})
	if !strings.Contains(out, "Huawei") || !strings.Contains(out, "12.50") {
		t.Errorf("Figure13 wrong:\n%s", out)
	}
}

func TestShorten(t *testing.T) {
	if shorten("Google Play") != "GPlay" {
		t.Error("Google Play not shortened")
	}
	if got := shorten("Some Extremely Long Market Name"); len(got) > 9 {
		t.Errorf("long name not truncated: %q", got)
	}
	if shorten("LIQU") != "LIQU" {
		t.Error("short names should pass through")
	}
}
