package report

import (
	"fmt"
	"strconv"

	"marketscope/internal/query"
)

// ScanTable renders a scan result as an aligned text table: one column per
// requested field, nulls as "-", followed by the execution meta. It accepts
// results straight from the engine and results decoded from the /api/scan
// JSON (where every number arrives as float64).
func ScanTable(title string, res *query.Result) string {
	t := newTable(title)
	header := make([]string, 0, len(res.Fields))
	for _, f := range res.Fields {
		header = append(header, f.Name)
	}
	t.row(header...)
	for _, r := range res.Rows {
		cells := make([]string, 0, len(r))
		for _, v := range r {
			cells = append(cells, scanCell(v))
		}
		t.row(cells...)
	}
	t.row()
	// The planner keeps the dataset size in Explain.DatasetRows
	// (Meta.Scanned shrank to rows actually evaluated); results without an
	// explain block keep the plain Scanned count.
	total := res.Meta.Scanned
	if res.Meta.Explain != nil {
		total = res.Meta.Explain.DatasetRows
	}
	t.row(fmt.Sprintf("%d of %d listings matched (%d returned, %d µs)",
		res.Meta.TotalMatched, total, res.Meta.Returned, res.Meta.QueryTimeMicros))
	return t.String()
}

// AggregateTable renders a grouped-aggregation result (the /api/aggregate
// payload, or cmd/scan -group-by output): one row per group, the group-by
// fields leading, one column per aggregate, nulls as "-", followed by a
// groups-over-matched meta line.
func AggregateTable(title string, res *query.Result) string {
	t := newTable(title)
	header := make([]string, 0, len(res.Fields))
	for _, f := range res.Fields {
		header = append(header, f.Name)
	}
	t.row(header...)
	for _, r := range res.Rows {
		cells := make([]string, 0, len(r))
		for _, v := range r {
			cells = append(cells, scanCell(v))
		}
		t.row(cells...)
	}
	t.row()
	total := res.Meta.Scanned
	if res.Meta.Explain != nil {
		total = res.Meta.Explain.DatasetRows
	}
	t.row(fmt.Sprintf("%d groups from %d of %d listings (%d µs)",
		res.Meta.Returned, res.Meta.TotalMatched, total, res.Meta.QueryTimeMicros))
	return t.String()
}

// ScanExplain renders a result's planner explain block (cmd/scan -explain):
// which secondary indexes answered filters, how many candidate rows survived
// the posting-list intersection, and how many rows the residual predicates
// actually touched.
func ScanExplain(meta query.Meta) string {
	ex := meta.Explain
	if ex == nil {
		return "plan: (oracle scan, no explain recorded)\n"
	}
	index := ex.IndexUsed
	if index == "" {
		index = "none (full column scan)"
	}
	return fmt.Sprintf("plan: index=%s rows=%d candidates=%d residual_scanned=%d evaluated=%d\n",
		index, ex.DatasetRows, ex.Candidates, ex.ResidualScanned, meta.Scanned)
}

// ScanFields renders a field listing (the /api/scan/fields payload) grouped
// in registration order.
func ScanFields(fields []query.FieldInfo) string {
	t := newTable("Scannable dataset fields")
	t.row("Field", "Category", "Kind", "Null?", "Idx?", "Doc")
	for _, f := range fields {
		nullable, indexable := "-", "-"
		if f.Nullable {
			nullable = "yes"
		}
		if f.Indexable {
			indexable = "yes"
		}
		t.row(f.Name, f.Category, string(f.Kind), nullable, indexable, f.Doc)
	}
	return t.String()
}

// scanCell formats one row value.
func scanCell(v any) string {
	switch x := v.(type) {
	case nil:
		return "-"
	case string:
		return x
	case bool:
		return yesNo(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		// JSON-decoded ints land here too; -1 precision keeps them clean.
		return strconv.FormatFloat(x, 'f', -1, 64)
	default:
		return fmt.Sprint(x)
	}
}
