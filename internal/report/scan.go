package report

import (
	"fmt"
	"strconv"

	"marketscope/internal/query"
)

// ScanTable renders a scan result as an aligned text table: one column per
// requested field, nulls as "-", followed by the execution meta. It accepts
// results straight from the engine and results decoded from the /api/scan
// JSON (where every number arrives as float64).
func ScanTable(title string, res *query.Result) string {
	t := newTable(title)
	header := make([]string, 0, len(res.Fields))
	for _, f := range res.Fields {
		header = append(header, f.Name)
	}
	t.row(header...)
	for _, r := range res.Rows {
		cells := make([]string, 0, len(r))
		for _, v := range r {
			cells = append(cells, scanCell(v))
		}
		t.row(cells...)
	}
	t.row()
	t.row(fmt.Sprintf("%d of %d listings matched (%d returned, %d µs)",
		res.Meta.TotalMatched, res.Meta.Scanned, res.Meta.Returned, res.Meta.QueryTimeMicros))
	return t.String()
}

// ScanFields renders a field listing (the /api/scan/fields payload) grouped
// in registration order.
func ScanFields(fields []query.FieldInfo) string {
	t := newTable("Scannable dataset fields")
	t.row("Field", "Category", "Kind", "Null?", "Doc")
	for _, f := range fields {
		nullable := "-"
		if f.Nullable {
			nullable = "yes"
		}
		t.row(f.Name, f.Category, string(f.Kind), nullable, f.Doc)
	}
	return t.String()
}

// scanCell formats one row value.
func scanCell(v any) string {
	switch x := v.(type) {
	case nil:
		return "-"
	case string:
		return x
	case bool:
		return yesNo(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		// JSON-decoded ints land here too; -1 precision keeps them clean.
		return strconv.FormatFloat(x, 'f', -1, 64)
	default:
		return fmt.Sprint(x)
	}
}
