package report

import (
	"strings"
	"testing"

	"marketscope/internal/analysis"
)

func TestHighlights(t *testing.T) {
	out := Highlights(
		[]analysis.TopShareStats{
			{Market: "Tencent Myapp", TopTenthPct: 0.8, TopOnePct: 0.9},
			{Market: "Google Play", TopTenthPct: 0.5, TopOnePct: 0.8},
		},
		analysis.AdEcosystemStats{Group: "gp", TopAdLibrary: "Google AdMob", TopAdShare: 0.9, DistinctAdLibraries: 5},
		analysis.AdEcosystemStats{Group: "cn", TopAdLibrary: "Umeng", TopAdShare: 0.4, DistinctAdLibraries: 20},
		[]analysis.StoreOverlapRow{
			{Market: "Google Play", SingleStoreShare: 0.77, Apps: 100},
			{Market: "25PP", SharedWithGooglePlayShare: 0.25, Apps: 200},
		},
		analysis.IdenticalAppStats{Triples: 40, HashMismatchTriples: 35},
		analysis.RepackagedMalwareStats{FlaggedPackages: 100, RepackagedFlagged: 38, RepackagedShare: 0.383},
		analysis.PublishingStats{GPDevsNotInChineseShare: 0.57, ChineseDevsNotOnGPShare: 0.48},
	)
	for _, want := range []string{
		"top 0.1% of apps hold up to 80%", "Tencent Myapp",
		"Google AdMob holds 90%", "Umeng leads with 40%",
		"57% of Google Play developers", "77% of Google Play apps are single-store",
		"35 of 40 identical", "38 of 100 flagged packages (38%)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("highlights missing %q:\n%s", want, out)
		}
	}
}

func TestHighlightsEmptyInputs(t *testing.T) {
	out := Highlights(nil, analysis.AdEcosystemStats{}, analysis.AdEcosystemStats{},
		nil, analysis.IdenticalAppStats{}, analysis.RepackagedMalwareStats{}, analysis.PublishingStats{})
	if !strings.Contains(out, "Section highlights") {
		t.Errorf("empty highlights should still have a title:\n%s", out)
	}
}
