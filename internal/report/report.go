// Package report renders the study's tables and figures as plain text. Every
// renderer corresponds to one artifact of the paper (Table 1-6, Figure 1-13)
// and prints the same rows or series the paper reports, so a bench run can be
// compared side by side with the published numbers (see EXPERIMENTS.md).
package report

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"marketscope/internal/analysis"
	"marketscope/internal/appmeta"
	"marketscope/internal/stats"
)

// table is a small helper around tabwriter for aligned text tables.
type table struct {
	sb strings.Builder
	tw *tabwriter.Writer
}

func newTable(title string) *table {
	t := &table{}
	t.sb.WriteString(title + "\n")
	t.sb.WriteString(strings.Repeat("=", len(title)) + "\n")
	t.tw = tabwriter.NewWriter(&t.sb, 2, 4, 2, ' ', 0)
	return t
}

func (t *table) row(cells ...string) {
	fmt.Fprintln(t.tw, strings.Join(cells, "\t"))
}

func (t *table) String() string {
	t.tw.Flush()
	return t.sb.String()
}

func pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func billions(v int64) string {
	return fmt.Sprintf("%.2f B", float64(v)/1e9)
}
func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "-"
}

// Table1 renders the dataset size and market feature comparison.
func Table1(rows []analysis.MarketOverviewRow, totals analysis.OverviewTotals) string {
	t := newTable("Table 1: dataset size and market features")
	t.row("Market", "Type", "#Apps", "#APKs", "Downloads", "#Devs", "%UniqueDevs",
		"Copyright", "Vetting", "SecCheck", "VetDays", "PrivacyPolicy", "AdsLabel", "IAPLabel")
	for _, r := range rows {
		p := r.Profile
		t.row(p.Name, string(p.Type), fmt.Sprint(r.Apps), fmt.Sprint(r.APKs),
			billions(r.AggregatedDownloads), fmt.Sprint(r.Developers), pct(r.UniqueDeveloperShare),
			yesNo(p.CopyrightCheck), yesNo(p.AppVetting), yesNo(p.SecurityCheck),
			f2(p.VettingDays), yesNo(p.RequiresPrivacyPolicy), yesNo(p.ReportsAds), yesNo(p.ReportsIAP))
	}
	t.row("TOTAL", "", fmt.Sprint(totals.Apps), fmt.Sprint(totals.APKs),
		billions(totals.AggregatedDownloads), fmt.Sprint(totals.Developers), "",
		"", "", "", "", "", "", "")
	t.row("", "", "", "", fmt.Sprintf("(GP %s / CN %s)",
		billions(totals.GooglePlayDownloads), billions(totals.ChineseDownloads)), "", "", "", "", "", "", "", "", "")
	return t.String()
}

// Figure1 renders the per-market category distribution.
func Figure1(dists []analysis.CategoryDistribution) string {
	t := newTable("Figure 1: distribution of app categories")
	header := []string{"Category"}
	for _, d := range dists {
		header = append(header, shorten(d.Market))
	}
	t.row(header...)
	for _, c := range appmeta.Categories() {
		row := []string{string(c)}
		for _, d := range dists {
			row = append(row, pct(d.Shares[c]))
		}
		t.row(row...)
	}
	return t.String()
}

// Figure2 renders the install-range distribution per market.
func Figure2(rows []analysis.DownloadRow) string {
	t := newTable("Figure 2: distribution of downloads across markets")
	header := []string{"Market"}
	for _, b := range stats.DownloadBins() {
		header = append(header, b.String())
	}
	t.row(header...)
	for _, r := range rows {
		row := []string{r.Market}
		for _, b := range stats.DownloadBins() {
			row = append(row, pct(r.Distribution[b]))
		}
		t.row(row...)
	}
	return t.String()
}

// Figure3 renders the minimum-API-level distribution.
func Figure3(gp, cn analysis.APILevelDistribution) string {
	t := newTable("Figure 3: minimum API level distribution")
	levels := map[int]bool{}
	for l := range gp.Shares {
		levels[l] = true
	}
	for l := range cn.Shares {
		levels[l] = true
	}
	var sorted []int
	for l := range levels {
		sorted = append(sorted, l)
	}
	sort.Ints(sorted)
	t.row("MinAPI", "Google Play", "Chinese markets")
	for _, l := range sorted {
		t.row(fmt.Sprint(l), pct(gp.Shares[l]), pct(cn.Shares[l]))
	}
	t.row("<9 (low)", pct(gp.LowAPIShare), pct(cn.LowAPIShare))
	return t.String()
}

// Figure4 renders the release/update date distribution.
func Figure4(gp, cn analysis.ReleaseDateDistribution) string {
	t := newTable("Figure 4: release/update date distribution")
	t.row("Cut-off", "Google Play", "Chinese markets")
	for _, label := range []string{"before 2014", "before 2015", "before 2016", "before 2017", "before crawl"} {
		t.row(label, pct(gp.Shares[label]), pct(cn.Shares[label]))
	}
	t.row("updated within 6 months", pct(gp.RecentShare), pct(cn.RecentShare))
	return t.String()
}

// Figure5 renders the third-party / advertising library presence per market.
func Figure5(rows []analysis.LibraryUsageRow) string {
	t := newTable("Figure 5: third-party and advertising library presence")
	t.row("Market", "%Apps w/ TPL", "Avg #TPL", "%Apps w/ AdLib", "Avg #AdLib", "Parsed")
	for _, r := range rows {
		t.row(r.Market, pct(r.ShareWithLibraries), f2(r.AvgLibraries),
			pct(r.ShareWithAds), f2(r.AvgAdLibraries), fmt.Sprint(r.Parsed))
	}
	return t.String()
}

// Table2 renders the top third-party libraries for Google Play and Chinese
// markets.
func Table2(gp, cn []analysis.LibraryRank) string {
	t := newTable("Table 2: top third-party libraries")
	t.row("Google Play", "Category", "Usage")
	for _, r := range gp {
		t.row(r.Name, string(r.Category), pct(r.Share))
	}
	t.row("", "", "")
	t.row("Chinese markets", "Category", "Usage")
	for _, r := range cn {
		t.row(r.Name, string(r.Category), pct(r.Share))
	}
	return t.String()
}

// Figure6 renders the app-rating distribution per market.
func Figure6(rows []analysis.RatingDistribution) string {
	t := newTable("Figure 6: distribution of app ratings")
	t.row("Market", "%Unrated", "%>=4.0", "%[2.5,3.0]", "CDF@2.5", "CDF@4.0")
	for _, r := range rows {
		cdf25, cdf40 := "-", "-"
		if len(r.CDF) > 8 {
			cdf25 = pct(r.CDF[5])
			cdf40 = pct(r.CDF[8])
		}
		t.row(r.Market, pct(r.UnratedShare), pct(r.HighShare), pct(r.DefaultBandShare), cdf25, cdf40)
	}
	return t.String()
}

// Figure7 renders the developer market-coverage CDF.
func Figure7(p analysis.PublishingStats) string {
	t := newTable("Figure 7: CDF of markets per developer")
	t.row("#Markets", "CDF")
	for i, v := range p.MarketsPerDeveloperCDF {
		t.row(fmt.Sprint(i+1), pct(v))
	}
	t.row("", "")
	t.row("developers", fmt.Sprint(p.Developers))
	t.row("single-market developers", pct(p.SingleMarketShare))
	t.row("present in all markets", fmt.Sprint(p.AllMarketsCount))
	t.row("GP devs absent from Chinese stores", pct(p.GPDevsNotInChineseShare))
	t.row("Chinese devs absent from GP", pct(p.ChineseDevsNotOnGPShare))
	return t.String()
}

// Figure8 renders the three cluster CDFs.
func Figure8(c analysis.ClusterCDFs) string {
	t := newTable("Figure 8: version / name-cluster / developer CDFs")
	t.row("(a) versions per package", "CDF")
	for i, v := range c.VersionsPerPackage {
		t.row(fmt.Sprint(i+1), pct(v))
	}
	t.row("(b) name-cluster size", "CDF")
	for i, p := range c.NameClusterSizePoints {
		t.row(fmt.Sprintf("%.0f", p), pct(c.NameClusterSize[i]))
	}
	t.row("(c) developers per package", "CDF")
	for i, v := range c.DevelopersPerPackage {
		t.row(fmt.Sprint(i+1), pct(v))
	}
	t.row("", "")
	t.row("packages with multiple simultaneous versions", pct(c.MultiVersionShare))
	t.row("packages signed by 2+ developers", pct(c.MultiDeveloperShare))
	t.row("packages sharing a name with another package", pct(c.SameNameShare))
	return t.String()
}

// Figure9 renders the up-to-date share per market.
func Figure9(rows []analysis.OutdatedRow) string {
	t := newTable("Figure 9: share of apps carrying the newest version")
	t.row("Market", "%Up-to-date", "Multi-store apps")
	for _, r := range rows {
		t.row(r.Market, pct(r.UpToDateShare), fmt.Sprint(r.MultiStoreApps))
	}
	return t.String()
}

// Table3 renders the fake and cloned app shares per market.
func Table3(res *analysis.MisbehaviorResult) string {
	t := newTable("Table 3: fake and cloned apps across stores")
	t.row("Market", "Fake(%)", "SB clones(%)", "CB clones(%)", "#Apps")
	for _, r := range res.Rows {
		t.row(r.Market, pct(r.FakeShare), pct(r.SignatureCloneShare), pct(r.CodeCloneShare), fmt.Sprint(r.Apps))
	}
	t.row("Average", pct(res.AvgFakeShare), pct(res.AvgSigShare), pct(res.AvgCodeShare), "")
	return t.String()
}

// Figure10 renders the clone source/destination heatmap.
func Figure10(heatmap map[string]map[string]int, markets []string) string {
	t := newTable("Figure 10: intra- and inter-market app clones (source rows, destination columns)")
	header := []string{"Source \\ Dest"}
	for _, m := range markets {
		header = append(header, shorten(m))
	}
	t.row(header...)
	for _, src := range markets {
		row := []string{shorten(src)}
		for _, dst := range markets {
			row = append(row, fmt.Sprint(heatmap[src][dst]))
		}
		t.row(row...)
	}
	return t.String()
}

// Figure11 renders the over-privilege distribution.
func Figure11(gp, cn analysis.OverPrivilegeStats) string {
	t := newTable("Figure 11: over-privileged apps")
	t.row("#Unused permissions", "Google Play", "Chinese markets")
	for bucket := 0; bucket <= 10; bucket++ {
		label := fmt.Sprint(bucket)
		if bucket == 10 {
			label = ">9"
		}
		t.row(label, pct(gp.Distribution[bucket]), pct(cn.Distribution[bucket]))
	}
	t.row("over-privileged share", pct(gp.OverPrivilegedShare), pct(cn.OverPrivilegedShare))
	for _, p := range cn.TopUnused {
		t.row("common unused: "+p.Permission, "", pct(p.Share))
	}
	return t.String()
}

// Table4 renders malware prevalence by AV-rank threshold.
func Table4(rows []analysis.MalwareRow, avg analysis.MalwareAverages) string {
	t := newTable("Table 4: apps labeled as malware by AV-rank")
	t.row("Market", ">=1", ">=10", ">=20", "Scanned")
	for _, r := range rows {
		t.row(r.Market, pct(r.ShareAtLeast1), pct(r.ShareAtLeast10), pct(r.ShareAtLeast20), fmt.Sprint(r.Parsed))
	}
	t.row("Average (Chinese)", pct(avg.ShareAtLeast1), pct(avg.ShareAtLeast10), pct(avg.ShareAtLeast20), "")
	return t.String()
}

// Table5 renders the most-flagged packages.
func Table5(entries []analysis.TopMalwareEntry) string {
	t := newTable("Table 5: top malicious apps by AV-rank")
	t.row("Package", "AV-Rank", "Family", "Markets")
	for _, e := range entries {
		t.row(e.Package, fmt.Sprint(e.AVRank), e.Family, strings.Join(e.Markets, ", "))
	}
	return t.String()
}

// Figure12 renders the malware-family distributions.
func Figure12(gp, cn []analysis.FamilyShare) string {
	t := newTable("Figure 12: top malware families")
	t.row("Google Play family", "Share", "Chinese markets family", "Share")
	n := len(gp)
	if len(cn) > n {
		n = len(cn)
	}
	for i := 0; i < n; i++ {
		var g, gs, c, cs string
		if i < len(gp) {
			g, gs = gp[i].Family, pct(gp[i].Share)
		}
		if i < len(cn) {
			c, cs = cn[i].Family, pct(cn[i].Share)
		}
		t.row(g, gs, c, cs)
	}
	return t.String()
}

// Table6 renders the malware-removal post-analysis.
func Table6(rows []analysis.RemovalRow, still analysis.StillHostedStats) string {
	t := newTable("Table 6: malware removed between the two crawls")
	t.row("Market", "%Removed", "Flagged(1st crawl)", "#Overlap w/ GPRM", "%Removed of overlap")
	for _, r := range rows {
		t.row(r.Market, pct(r.RemovedShare), fmt.Sprint(r.FlaggedFirstCrawl),
			fmt.Sprint(r.OverlappedWithGPRM), pct(r.RemovedShareOfGPRM))
	}
	t.row("", "", "", "", "")
	t.row("GP-removed malware still hosted on a Chinese store",
		pct(still.Share), fmt.Sprint(still.StillHostedSomewhere), fmt.Sprint(still.GPRemovedMalware), "")
	return t.String()
}

// Figure13 renders the multi-dimensional market comparison.
func Figure13(rows []analysis.RadarRow) string {
	t := newTable("Figure 13: multi-dimensional market comparison (0-100 per axis)")
	metrics := []analysis.RadarMetric{
		analysis.MetricCatalogSize, analysis.MetricDownloads, analysis.MetricHighRatings,
		analysis.MetricMalware, analysis.MetricFakes, analysis.MetricClones,
		analysis.MetricOutdated, analysis.MetricRecentUpdates,
	}
	header := []string{"Metric"}
	for _, r := range rows {
		header = append(header, shorten(r.Market))
	}
	t.row(header...)
	for _, m := range metrics {
		row := []string{string(m)}
		for _, r := range rows {
			row = append(row, f2(r.Values[m]))
		}
		t.row(row...)
	}
	return t.String()
}

// shorten abbreviates market names for wide tables.
func shorten(name string) string {
	replacements := []struct{ from, to string }{
		{"Google Play", "GPlay"}, {"Tencent Myapp", "Tencent"}, {"Baidu Market", "Baidu"},
		{"360 Market", "360"}, {"OPPO Market", "OPPO"}, {"Xiaomi Market", "Xiaomi"},
		{"MeiZu Market", "MeiZu"}, {"Huawei Market", "Huawei"}, {"Lenovo MM", "Lenovo"},
		{"AnZhi Market", "AnZhi"}, {"PC Online", "PCOnl"}, {"App China", "AppCN"},
	}
	for _, r := range replacements {
		if name == r.from {
			return r.to
		}
	}
	if len(name) > 9 {
		return name[:9]
	}
	return name
}
