// Command benchjson converts `go test -bench` output into a small JSON
// document so CI can record the performance trajectory as a structured
// artifact instead of a text log.
//
// Usage:
//
//	go test -run xxx -bench ... -benchmem . | tee bench.txt
//	benchjson < bench.txt > BENCH_query.json
//
// Two line shapes are extracted, everything else passes through untouched:
//
//   - standard benchmark result lines ("BenchmarkX-8  120  9876 ns/op
//     1024 B/op  17 allocs/op") become entries under "benchmarks";
//   - "<MARKER> key=value ..." lines are folded into the "stats" object,
//     numeric values parsed. The marker defaults to "SCANSTAT" (printed by
//     BenchmarkScanQuery with the planner's candidate counts, prune ratio
//     and asserted speedup); -stat selects another, e.g. ANALYSESSTAT for
//     BenchmarkRunAnalyses' scheduler numbers.
//
// An optional -match regexp keeps only benchmark names it matches, so the
// scan-engine artifact does not drag every pipeline bench along.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line. Bytes/Allocs are pointers so runs
// without -benchmem stay distinguishable from measured zeros.
type Result struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64   `json:"allocs_per_op,omitempty"`
}

// Doc is the artifact schema.
type Doc struct {
	Benchmarks []Result       `json:"benchmarks"`
	Stats      map[string]any `json:"stats,omitempty"`
}

var benchLine = regexp.MustCompile(
	`^(Benchmark[^\s]+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	match := flag.String("match", "", "keep only benchmarks whose name matches this regexp")
	stat := flag.String("stat", "SCANSTAT", "marker of the key=value stat lines to fold into \"stats\"")
	flag.Parse()
	if err := run(os.Stdin, os.Stdout, *match, *stat); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out io.Writer, match, stat string) error {
	var keep *regexp.Regexp
	if match != "" {
		re, err := regexp.Compile(match)
		if err != nil {
			return fmt.Errorf("bad -match: %w", err)
		}
		keep = re
	}
	doc := Doc{Benchmarks: []Result{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if m := benchLine.FindStringSubmatch(line); m != nil {
			if keep != nil && !keep.MatchString(m[1]) {
				continue
			}
			r := Result{Name: m[1]}
			r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
			r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
			if m[4] != "" {
				v, err := strconv.ParseFloat(m[4], 64)
				if err == nil {
					r.BytesPerOp = &v
				}
			}
			if m[5] != "" {
				v, err := strconv.ParseInt(m[5], 10, 64)
				if err == nil {
					r.AllocsPerOp = &v
				}
			}
			doc.Benchmarks = append(doc.Benchmarks, r)
			continue
		}
		if idx := strings.Index(line, stat+" "); idx >= 0 {
			if doc.Stats == nil {
				doc.Stats = map[string]any{}
			}
			for _, kv := range strings.Fields(line[idx+len(stat)+1:]) {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					continue
				}
				if f, err := strconv.ParseFloat(v, 64); err == nil {
					doc.Stats[k] = f
				} else {
					doc.Stats[k] = v
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
