package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
----- reproduced scan-plan -----
SCANSTAT rows=754 candidates=85 residual_scanned=85 prune_ratio=8.87 speedup=7.5 planner_allocs=67 oracle_allocs=273 index=sorted(av_positives)

BenchmarkScanQuery/selective/planner-8         	     120	      9876 ns/op	    5432 B/op	      70 allocs/op
BenchmarkScanQuery/selective/oracle-8          	      15	     71074 ns/op	   17112 B/op	     273 allocs/op
BenchmarkEnrich/workers_1                      	       1	 123456789 ns/op
PASS
ok  	marketscope	1.4s
`

func parse(t *testing.T, match string) Doc {
	t.Helper()
	var out bytes.Buffer
	if err := run(strings.NewReader(sample), &out, match, "SCANSTAT"); err != nil {
		t.Fatalf("run: %v", err)
	}
	var doc Doc
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	return doc
}

func TestParseBenchLines(t *testing.T) {
	doc := parse(t, "")
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkScanQuery/selective/planner" || b.Iterations != 120 || b.NsPerOp != 9876 {
		t.Fatalf("first bench = %+v", b)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 5432 || b.AllocsPerOp == nil || *b.AllocsPerOp != 70 {
		t.Fatalf("memory columns not parsed: %+v", b)
	}
	// The -benchmem-less line keeps its optional fields absent, not zero.
	if e := doc.Benchmarks[2]; e.BytesPerOp != nil || e.AllocsPerOp != nil {
		t.Fatalf("bench without -benchmem grew memory columns: %+v", e)
	}
}

func TestParseScanStat(t *testing.T) {
	doc := parse(t, "")
	if doc.Stats["candidates"] != 85.0 || doc.Stats["prune_ratio"] != 8.87 || doc.Stats["speedup"] != 7.5 {
		t.Fatalf("stats = %+v", doc.Stats)
	}
	if doc.Stats["index"] != "sorted(av_positives)" {
		t.Fatalf("non-numeric stat mangled: %v", doc.Stats["index"])
	}
}

func TestMatchFilter(t *testing.T) {
	doc := parse(t, "ScanQuery")
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("match kept %d benchmarks, want 2", len(doc.Benchmarks))
	}
	for _, b := range doc.Benchmarks {
		if !strings.Contains(b.Name, "ScanQuery") {
			t.Fatalf("match leaked %q", b.Name)
		}
	}
	if doc.Stats["rows"] != 754.0 {
		t.Fatalf("stats lost under -match: %+v", doc.Stats)
	}
}

func TestBadMatch(t *testing.T) {
	if err := run(strings.NewReader(sample), &bytes.Buffer{}, "(", "SCANSTAT"); err == nil {
		t.Fatal("invalid regexp accepted")
	}
}

// TestStatMarker folds a different marker's key=value line when -stat names
// it, ignoring the SCANSTAT one.
func TestStatMarker(t *testing.T) {
	const analyses = `
ANALYSESSTAT tasks=26 workers=4 serial_oracle_ns=9000000 scheduled_ns=2500000 speedup=3.6 identical=1
SCANSTAT rows=754
BenchmarkRunAnalyses/scheduled-8   1  2500000 ns/op
`
	var out bytes.Buffer
	if err := run(strings.NewReader(analyses), &out, "", "ANALYSESSTAT"); err != nil {
		t.Fatalf("run: %v", err)
	}
	var doc Doc
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if doc.Stats["speedup"] != 3.6 || doc.Stats["tasks"] != 26.0 || doc.Stats["identical"] != 1.0 {
		t.Fatalf("stats = %+v", doc.Stats)
	}
	if _, leaked := doc.Stats["rows"]; leaked {
		t.Fatalf("SCANSTAT line folded under ANALYSESSTAT marker: %+v", doc.Stats)
	}
	if len(doc.Benchmarks) != 1 || doc.Benchmarks[0].Name != "BenchmarkRunAnalyses/scheduled" {
		t.Fatalf("benchmarks = %+v", doc.Benchmarks)
	}
}
