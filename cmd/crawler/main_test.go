package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"marketscope/internal/crawler"
	"marketscope/internal/market"
	"marketscope/internal/synth"
)

// startMarkets serves a small generated ecosystem over httptest servers and
// writes the endpoints file the command expects.
func startMarkets(t *testing.T) (endpointsPath string, seeds []string) {
	t.Helper()
	cfg := synth.SmallConfig()
	cfg.NumApps = 60
	cfg.NumDevelopers = 25
	cfg.Markets = []string{market.GooglePlay, "Baidu Market", "Huawei Market"}
	eco, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stores, err := eco.Populate()
	if err != nil {
		t.Fatal(err)
	}
	var endpoints []crawler.Endpoint
	for name, store := range stores {
		srv := httptest.NewServer(market.NewServer(store))
		t.Cleanup(srv.Close)
		endpoints = append(endpoints, crawler.Endpoint{Name: name, BaseURL: srv.URL})
	}
	blob, err := json.Marshal(endpoints)
	if err != nil {
		t.Fatal(err)
	}
	endpointsPath = filepath.Join(t.TempDir(), "endpoints.json")
	if err := os.WriteFile(endpointsPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	apps := append([]*synth.App(nil), eco.Apps...)
	sort.Slice(apps, func(i, j int) bool { return apps[i].BaseDownloads > apps[j].BaseDownloads })
	for i := 0; i < 10 && i < len(apps); i++ {
		seeds = append(seeds, apps[i].Package)
	}
	return endpointsPath, seeds
}

func TestCrawlerCommandEndToEnd(t *testing.T) {
	endpointsPath, seeds := startMarkets(t)
	outDir := filepath.Join(t.TempDir(), "snapshot")
	err := run([]string{
		"-endpoints", endpointsPath,
		"-out", outDir,
		"-seeds", strings.Join(seeds, ","),
		"-concurrency", "4",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	snap, err := crawler.Load(outDir)
	if err != nil {
		t.Fatalf("load snapshot: %v", err)
	}
	if snap.NumRecords() == 0 || snap.NumAPKs() == 0 {
		t.Errorf("snapshot empty: %d records, %d apks", snap.NumRecords(), snap.NumAPKs())
	}
	if len(snap.Markets()) == 0 {
		t.Error("no markets in snapshot")
	}
}

func TestCrawlerCommandValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -endpoints accepted")
	}
	if err := run([]string{"-endpoints", "/does/not/exist.json"}); err == nil {
		t.Error("missing endpoints file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-endpoints", bad}); err == nil {
		t.Error("malformed endpoints file accepted")
	}
}
