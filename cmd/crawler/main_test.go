package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"marketscope/internal/analysis"
	"marketscope/internal/crawler"
	"marketscope/internal/ingest"
	"marketscope/internal/market"
	"marketscope/internal/synth"
)

// startMarkets serves a small generated ecosystem over httptest servers and
// writes the endpoints file the command expects.
func startMarkets(t *testing.T) (endpointsPath string, seeds []string) {
	t.Helper()
	cfg := synth.SmallConfig()
	cfg.NumApps = 60
	cfg.NumDevelopers = 25
	cfg.Markets = []string{market.GooglePlay, "Baidu Market", "Huawei Market"}
	eco, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stores, err := eco.Populate()
	if err != nil {
		t.Fatal(err)
	}
	var endpoints []crawler.Endpoint
	for name, store := range stores {
		srv := httptest.NewServer(market.NewServer(store))
		t.Cleanup(srv.Close)
		endpoints = append(endpoints, crawler.Endpoint{Name: name, BaseURL: srv.URL})
	}
	blob, err := json.Marshal(endpoints)
	if err != nil {
		t.Fatal(err)
	}
	endpointsPath = filepath.Join(t.TempDir(), "endpoints.json")
	if err := os.WriteFile(endpointsPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	apps := append([]*synth.App(nil), eco.Apps...)
	sort.Slice(apps, func(i, j int) bool { return apps[i].BaseDownloads > apps[j].BaseDownloads })
	for i := 0; i < 10 && i < len(apps); i++ {
		seeds = append(seeds, apps[i].Package)
	}
	return endpointsPath, seeds
}

func TestCrawlerCommandEndToEnd(t *testing.T) {
	endpointsPath, seeds := startMarkets(t)
	outDir := filepath.Join(t.TempDir(), "snapshot")
	err := run([]string{
		"-endpoints", endpointsPath,
		"-out", outDir,
		"-seeds", strings.Join(seeds, ","),
		"-concurrency", "4",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	snap, err := crawler.Load(outDir)
	if err != nil {
		t.Fatalf("load snapshot: %v", err)
	}
	if snap.NumRecords() == 0 || snap.NumAPKs() == 0 {
		t.Errorf("snapshot empty: %d records, %d apks", snap.NumRecords(), snap.NumAPKs())
	}
	if len(snap.Markets()) == 0 {
		t.Error("no markets in snapshot")
	}
}

// analysisHandler builds a delta-fed analysis endpoint like marketsim
// -analysis does: empty engine attached, ingestor publishing each epoch via
// SwapSource.
func analysisHandler(t *testing.T) (http.Handler, *ingest.Ingestor) {
	t.Helper()
	srv := market.NewServer(market.NewStore(market.Profile{Name: "analysis"}))
	empty, err := analysis.BuildDatasetFromRecords(time.Now(), nil, nil, analysis.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	empty.Enrich(analysis.DefaultEnrichOptions())
	srv.AttachScan(empty.QuerySource())
	ing := ingest.New(ingest.Options{
		Enrich:    analysis.DefaultEnrichOptions(),
		CrawlTime: time.Now(),
		Publish:   func(d *analysis.Dataset) { srv.SwapSource(d.QuerySource()) },
	})
	srv.AttachPost(ingest.IngestPath, ingest.Handler(ing))
	return srv, ing
}

func startAnalysisServer(t *testing.T) (baseURL string, ing *ingest.Ingestor) {
	t.Helper()
	h, ing := analysisHandler(t)
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts.URL, ing
}

// TestCrawlerPushesCrawlAsDelta crawls the markets and streams the result
// into an analysis server; a second identical crawl must be a pure no-op
// append (everything already known) that still advances the cursor.
func TestCrawlerPushesCrawlAsDelta(t *testing.T) {
	endpointsPath, seeds := startMarkets(t)
	base, ing := startAnalysisServer(t)

	args := []string{
		"-endpoints", endpointsPath,
		"-out", "",
		"-seeds", strings.Join(seeds, ","),
		"-concurrency", "4",
		"-ingest", base,
	}
	if err := run(args); err != nil {
		t.Fatalf("run with -ingest: %v", err)
	}
	if ing.Cursor() != 1 {
		t.Fatalf("cursor after first push = %d, want 1", ing.Cursor())
	}
	ds := ing.Dataset()
	if ds == nil || ds.NumListings() == 0 {
		t.Fatal("no dataset published after first push")
	}
	size := ds.NumListings()

	// Second crawl of the unchanged markets: every listing is already known.
	if err := run(args); err != nil {
		t.Fatalf("second run with -ingest: %v", err)
	}
	if ing.Cursor() != 2 {
		t.Fatalf("cursor after second push = %d, want 2", ing.Cursor())
	}
	if got := ing.Dataset(); got != ds || got.NumListings() != size {
		t.Fatalf("duplicate crawl changed the dataset: %d listings (was %d)", got.NumListings(), size)
	}
}

// TestCrawlerWatchRounds runs the watch loop a fixed number of rounds; each
// round lands one delta.
func TestCrawlerWatchRounds(t *testing.T) {
	endpointsPath, seeds := startMarkets(t)
	base, ing := startAnalysisServer(t)
	err := run([]string{
		"-endpoints", endpointsPath,
		"-out", "",
		"-seeds", strings.Join(seeds, ","),
		"-concurrency", "4",
		"-ingest", base + ingest.IngestPath, // full URL accepted too
		"-watch", "10ms", "-rounds", "2",
	})
	if err != nil {
		t.Fatalf("run with -watch: %v", err)
	}
	if ing.Cursor() != 2 {
		t.Fatalf("cursor after 2 watch rounds = %d, want 2", ing.Cursor())
	}
}

func TestCrawlerCommandValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -endpoints accepted")
	}
	if err := run([]string{"-endpoints", "/does/not/exist.json"}); err == nil {
		t.Error("missing endpoints file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-endpoints", bad}); err == nil {
		t.Error("malformed endpoints file accepted")
	}
	if err := run([]string{"-endpoints", bad, "-watch", "1s"}); err == nil {
		t.Error("-watch without -ingest accepted")
	}
	if err := run([]string{"-endpoints", bad, "-rounds", "2"}); err == nil {
		t.Error("-rounds without -watch accepted")
	}
}

// flakyProxy fronts the analysis server with injected transient trouble: a
// run of failed cursor probes, then a push whose delta lands on the server
// but whose acknowledgement is lost (the classic at-least-once hazard the
// retry loop must turn into exactly-once via cursor re-probing).
type flakyProxy struct {
	mu       sync.Mutex
	inner    http.Handler
	gets503  int // this many GETs answer 503 before passing through
	dropAcks int // this many POSTs land on inner but answer 502
}

func (f *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	if r.Method == http.MethodGet && f.gets503 > 0 {
		f.gets503--
		f.mu.Unlock()
		http.Error(w, "warming up", http.StatusServiceUnavailable)
		return
	}
	if r.Method == http.MethodPost && f.dropAcks > 0 {
		f.dropAcks--
		f.mu.Unlock()
		rec := httptest.NewRecorder()
		f.inner.ServeHTTP(rec, r)                              // the delta lands...
		http.Error(w, "gateway hiccup", http.StatusBadGateway) // ...but the ack is lost
		return
	}
	f.mu.Unlock()
	f.inner.ServeHTTP(w, r)
}

// TestCrawlerIngestRetriesTransientFailures drives -ingest through a flaky
// proxy: two failed cursor probes, then a push that lands server-side but
// loses its ack. The crawler must back off with growing jittered delays,
// re-probe the server's durable cursor, and finish with the stream applied
// exactly once.
func TestCrawlerIngestRetriesTransientFailures(t *testing.T) {
	endpointsPath, seeds := startMarkets(t)
	inner, ing := analysisHandler(t)
	flaky := &flakyProxy{inner: inner, gets503: 2, dropAcks: 1}
	ts := httptest.NewServer(flaky)
	t.Cleanup(ts.Close)

	var slept []time.Duration
	defer func(orig func(time.Duration)) { retrySleep = orig }(retrySleep)
	retrySleep = func(d time.Duration) { slept = append(slept, d) }

	err := run([]string{
		"-endpoints", endpointsPath,
		"-out", "",
		"-seeds", strings.Join(seeds, ","),
		"-concurrency", "4",
		"-ingest", ts.URL,
	})
	if err != nil {
		t.Fatalf("run through flaky proxy: %v", err)
	}
	// The lost-ack push landed at seq 0; the retry re-probed cursor 1 and
	// re-pushed as a pure no-op append, so the cursor ends at 2.
	if ing.Cursor() != 2 {
		t.Fatalf("cursor = %d, want 2 (landed push + acked no-op retry)", ing.Cursor())
	}
	ds := ing.Dataset()
	if ds == nil || ds.NumListings() == 0 {
		t.Fatal("no dataset after retried push")
	}
	// Two probe failures plus one lost ack: exactly three backoffs, each
	// within its jitter window and strictly growing (the windows are disjoint).
	if len(slept) != 3 {
		t.Fatalf("slept %d times (%v), want 3", len(slept), slept)
	}
	for i, d := range slept {
		if d < retryBase/2 || d > retryMax {
			t.Errorf("backoff %d = %v outside [%v, %v]", i, d, retryBase/2, retryMax)
		}
		if i > 0 && d <= slept[i-1] {
			t.Errorf("backoff %d = %v did not grow past %v", i, d, slept[i-1])
		}
	}
}

// TestCrawlerIngestGivesUpEventually points -ingest at a server that never
// recovers: the crawler must stop after retryAttempts tries with a clear
// error instead of spinning forever.
func TestCrawlerIngestGivesUpEventually(t *testing.T) {
	endpointsPath, seeds := startMarkets(t)
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down for maintenance", http.StatusServiceUnavailable)
	}))
	t.Cleanup(down.Close)

	var sleeps int
	defer func(orig func(time.Duration)) { retrySleep = orig }(retrySleep)
	retrySleep = func(time.Duration) { sleeps++ }

	err := run([]string{
		"-endpoints", endpointsPath,
		"-out", "",
		"-seeds", strings.Join(seeds, ","),
		"-concurrency", "4",
		"-ingest", down.URL,
	})
	if err == nil || !strings.Contains(err.Error(), "giving up") {
		t.Fatalf("err = %v, want giving-up error", err)
	}
	if sleeps != retryAttempts-1 {
		t.Fatalf("slept %d times, want %d", sleeps, retryAttempts-1)
	}
}
