package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"marketscope/internal/analysis"
	"marketscope/internal/crawler"
	"marketscope/internal/ingest"
	"marketscope/internal/market"
	"marketscope/internal/synth"
)

// startMarkets serves a small generated ecosystem over httptest servers and
// writes the endpoints file the command expects.
func startMarkets(t *testing.T) (endpointsPath string, seeds []string) {
	t.Helper()
	cfg := synth.SmallConfig()
	cfg.NumApps = 60
	cfg.NumDevelopers = 25
	cfg.Markets = []string{market.GooglePlay, "Baidu Market", "Huawei Market"}
	eco, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stores, err := eco.Populate()
	if err != nil {
		t.Fatal(err)
	}
	var endpoints []crawler.Endpoint
	for name, store := range stores {
		srv := httptest.NewServer(market.NewServer(store))
		t.Cleanup(srv.Close)
		endpoints = append(endpoints, crawler.Endpoint{Name: name, BaseURL: srv.URL})
	}
	blob, err := json.Marshal(endpoints)
	if err != nil {
		t.Fatal(err)
	}
	endpointsPath = filepath.Join(t.TempDir(), "endpoints.json")
	if err := os.WriteFile(endpointsPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	apps := append([]*synth.App(nil), eco.Apps...)
	sort.Slice(apps, func(i, j int) bool { return apps[i].BaseDownloads > apps[j].BaseDownloads })
	for i := 0; i < 10 && i < len(apps); i++ {
		seeds = append(seeds, apps[i].Package)
	}
	return endpointsPath, seeds
}

func TestCrawlerCommandEndToEnd(t *testing.T) {
	endpointsPath, seeds := startMarkets(t)
	outDir := filepath.Join(t.TempDir(), "snapshot")
	err := run([]string{
		"-endpoints", endpointsPath,
		"-out", outDir,
		"-seeds", strings.Join(seeds, ","),
		"-concurrency", "4",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	snap, err := crawler.Load(outDir)
	if err != nil {
		t.Fatalf("load snapshot: %v", err)
	}
	if snap.NumRecords() == 0 || snap.NumAPKs() == 0 {
		t.Errorf("snapshot empty: %d records, %d apks", snap.NumRecords(), snap.NumAPKs())
	}
	if len(snap.Markets()) == 0 {
		t.Error("no markets in snapshot")
	}
}

// startAnalysisServer serves a delta-fed analysis endpoint like marketsim
// -analysis does: empty engine attached, ingestor publishing each epoch via
// SwapSource.
func startAnalysisServer(t *testing.T) (baseURL string, ing *ingest.Ingestor) {
	t.Helper()
	srv := market.NewServer(market.NewStore(market.Profile{Name: "analysis"}))
	empty, err := analysis.BuildDatasetFromRecords(time.Now(), nil, nil, analysis.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	empty.Enrich(analysis.DefaultEnrichOptions())
	srv.AttachScan(empty.QuerySource())
	ing = ingest.New(ingest.Options{
		Enrich:    analysis.DefaultEnrichOptions(),
		CrawlTime: time.Now(),
		Publish:   func(d *analysis.Dataset) { srv.SwapSource(d.QuerySource()) },
	})
	srv.AttachPost(ingest.IngestPath, ingest.Handler(ing))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts.URL, ing
}

// TestCrawlerPushesCrawlAsDelta crawls the markets and streams the result
// into an analysis server; a second identical crawl must be a pure no-op
// append (everything already known) that still advances the cursor.
func TestCrawlerPushesCrawlAsDelta(t *testing.T) {
	endpointsPath, seeds := startMarkets(t)
	base, ing := startAnalysisServer(t)

	args := []string{
		"-endpoints", endpointsPath,
		"-out", "",
		"-seeds", strings.Join(seeds, ","),
		"-concurrency", "4",
		"-ingest", base,
	}
	if err := run(args); err != nil {
		t.Fatalf("run with -ingest: %v", err)
	}
	if ing.Cursor() != 1 {
		t.Fatalf("cursor after first push = %d, want 1", ing.Cursor())
	}
	ds := ing.Dataset()
	if ds == nil || ds.NumListings() == 0 {
		t.Fatal("no dataset published after first push")
	}
	size := ds.NumListings()

	// Second crawl of the unchanged markets: every listing is already known.
	if err := run(args); err != nil {
		t.Fatalf("second run with -ingest: %v", err)
	}
	if ing.Cursor() != 2 {
		t.Fatalf("cursor after second push = %d, want 2", ing.Cursor())
	}
	if got := ing.Dataset(); got != ds || got.NumListings() != size {
		t.Fatalf("duplicate crawl changed the dataset: %d listings (was %d)", got.NumListings(), size)
	}
}

// TestCrawlerWatchRounds runs the watch loop a fixed number of rounds; each
// round lands one delta.
func TestCrawlerWatchRounds(t *testing.T) {
	endpointsPath, seeds := startMarkets(t)
	base, ing := startAnalysisServer(t)
	err := run([]string{
		"-endpoints", endpointsPath,
		"-out", "",
		"-seeds", strings.Join(seeds, ","),
		"-concurrency", "4",
		"-ingest", base + ingest.IngestPath, // full URL accepted too
		"-watch", "10ms", "-rounds", "2",
	})
	if err != nil {
		t.Fatalf("run with -watch: %v", err)
	}
	if ing.Cursor() != 2 {
		t.Fatalf("cursor after 2 watch rounds = %d, want 2", ing.Cursor())
	}
}

func TestCrawlerCommandValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -endpoints accepted")
	}
	if err := run([]string{"-endpoints", "/does/not/exist.json"}); err == nil {
		t.Error("missing endpoints file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-endpoints", bad}); err == nil {
		t.Error("malformed endpoints file accepted")
	}
	if err := run([]string{"-endpoints", bad, "-watch", "1s"}); err == nil {
		t.Error("-watch without -ingest accepted")
	}
	if err := run([]string{"-endpoints", bad, "-rounds", "2"}); err == nil {
		t.Error("-rounds without -watch accepted")
	}
}
