// Command crawler harvests app metadata and APKs from running market servers
// (for example the ones started by the marketsim command) and persists the
// resulting snapshot to disk for later analysis.
//
// Usage:
//
//	crawler -endpoints endpoints.json -out ./snapshot [-seeds pkg1,pkg2,...]
//	        [-apks] [-concurrency 8] [-max-per-market 0]
//
// The endpoints file is the JSON list printed by marketsim. Seeds are only
// needed for markets that expose related-apps navigation (Google Play);
// catalog- and index-style markets are enumerated automatically.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"marketscope/internal/crawler"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "crawler:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("crawler", flag.ContinueOnError)
	endpointsPath := fs.String("endpoints", "", "JSON file listing market endpoints (required)")
	outDir := fs.String("out", "snapshot", "directory to write the snapshot to")
	seedList := fs.String("seeds", "", "comma-separated package names seeding BFS markets")
	fetchAPKs := fs.Bool("apks", true, "download APKs alongside metadata")
	concurrency := fs.Int("concurrency", 8, "number of parallel fetch workers")
	maxPerMarket := fs.Int("max-per-market", 0, "cap on listings per market (0 = unlimited)")
	noParallelSearch := fs.Bool("no-parallel-search", false, "disable the cross-market parallel search")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *endpointsPath == "" {
		return fmt.Errorf("-endpoints is required")
	}

	blob, err := os.ReadFile(*endpointsPath)
	if err != nil {
		return fmt.Errorf("read endpoints: %w", err)
	}
	var endpoints []crawler.Endpoint
	if err := json.Unmarshal(blob, &endpoints); err != nil {
		return fmt.Errorf("parse endpoints: %w", err)
	}

	var seeds []string
	for _, s := range strings.Split(*seedList, ",") {
		if s = strings.TrimSpace(s); s != "" {
			seeds = append(seeds, s)
		}
	}

	c, err := crawler.New(crawler.Config{
		Endpoints:        endpoints,
		Seeds:            seeds,
		Concurrency:      *concurrency,
		MaxAppsPerMarket: *maxPerMarket,
		FetchAPKs:        *fetchAPKs,
		ParallelSearch:   !*noParallelSearch,
	})
	if err != nil {
		return err
	}
	snap, err := c.Run(context.Background())
	if err != nil {
		return err
	}
	stats := c.Stats()
	fmt.Printf("crawled %d records and %d APKs from %d markets (%d requests, %d not found, %d errors)\n",
		snap.NumRecords(), snap.NumAPKs(), len(snap.Markets()), stats.Requests, stats.NotFound, stats.Errors)
	if err := snap.Save(*outDir); err != nil {
		return err
	}
	fmt.Printf("snapshot written to %s\n", *outDir)
	return nil
}
