// Command crawler harvests app metadata and APKs from running market servers
// (for example the ones started by the marketsim command) and persists the
// resulting snapshot to disk for later analysis.
//
// Usage:
//
//	crawler -endpoints endpoints.json -out ./snapshot [-seeds pkg1,pkg2,...]
//	        [-apks] [-concurrency 8] [-max-per-market 0]
//	        [-ingest URL] [-watch D] [-rounds N]
//
// The endpoints file is the JSON list printed by marketsim. Seeds are only
// needed for markets that expose related-apps navigation (Google Play);
// catalog- and index-style markets are enumerated automatically.
//
// -ingest streams the crawl into an analysis server (marketsim -analysis, or
// anything mounting internal/ingest's handler): the command probes the
// server's cursor with a GET, POSTs the crawl as one append-only delta at
// that cursor, and resynchronizes on a 409 cursor conflict. The feed is
// append-only, so re-pushing a crawl is safe — already-ingested listings are
// skipped server-side. -watch re-crawls at the given interval and pushes each
// round's delta, following a growing catalog (marketsim -hold-back) without
// restarts; -rounds bounds the loop (0 = run until killed).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"marketscope/internal/crawler"
	"marketscope/internal/ingest"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "crawler:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("crawler", flag.ContinueOnError)
	endpointsPath := fs.String("endpoints", "", "JSON file listing market endpoints (required)")
	outDir := fs.String("out", "snapshot", "directory to write the snapshot to (empty = don't persist)")
	seedList := fs.String("seeds", "", "comma-separated package names seeding BFS markets")
	fetchAPKs := fs.Bool("apks", true, "download APKs alongside metadata")
	concurrency := fs.Int("concurrency", 8, "number of parallel fetch workers")
	maxPerMarket := fs.Int("max-per-market", 0, "cap on listings per market (0 = unlimited)")
	noParallelSearch := fs.Bool("no-parallel-search", false, "disable the cross-market parallel search")
	ingestURL := fs.String("ingest", "", "analysis server base URL; each crawl is POSTed there as an append-only delta")
	watch := fs.Duration("watch", 0, "re-crawl at this interval, pushing each round's delta (requires -ingest)")
	rounds := fs.Int("rounds", 0, "with -watch, stop after this many crawl rounds (0 = run until killed)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *endpointsPath == "" {
		return fmt.Errorf("-endpoints is required")
	}
	if *watch > 0 && *ingestURL == "" {
		return fmt.Errorf("-watch requires -ingest")
	}
	if *rounds != 0 && *watch <= 0 {
		return fmt.Errorf("-rounds requires -watch")
	}

	blob, err := os.ReadFile(*endpointsPath)
	if err != nil {
		return fmt.Errorf("read endpoints: %w", err)
	}
	var endpoints []crawler.Endpoint
	if err := json.Unmarshal(blob, &endpoints); err != nil {
		return fmt.Errorf("parse endpoints: %w", err)
	}

	var seeds []string
	for _, s := range strings.Split(*seedList, ",") {
		if s = strings.TrimSpace(s); s != "" {
			seeds = append(seeds, s)
		}
	}
	cfg := crawler.Config{
		Endpoints:        endpoints,
		Seeds:            seeds,
		Concurrency:      *concurrency,
		MaxAppsPerMarket: *maxPerMarket,
		FetchAPKs:        *fetchAPKs,
		ParallelSearch:   !*noParallelSearch,
	}

	for round := 1; ; round++ {
		c, err := crawler.New(cfg)
		if err != nil {
			return err
		}
		snap, err := c.Run(context.Background())
		if err != nil {
			return err
		}
		stats := c.Stats()
		fmt.Printf("crawled %d records and %d APKs from %d markets (%d requests, %d not found, %d errors)\n",
			snap.NumRecords(), snap.NumAPKs(), len(snap.Markets()), stats.Requests, stats.NotFound, stats.Errors)
		if *ingestURL != "" {
			res, err := pushDelta(*ingestURL, snap)
			if err != nil {
				return fmt.Errorf("push delta: %w", err)
			}
			fmt.Printf("pushed delta at cursor %d: %d added, %d already known, %d listings live (sealed=%v)\n",
				res.Seq, res.Added, res.Skipped, res.Listings, res.Sealed)
		}
		if *outDir != "" {
			if err := snap.Save(*outDir); err != nil {
				return err
			}
			fmt.Printf("snapshot written to %s\n", *outDir)
		}
		if *watch <= 0 || (*rounds > 0 && round >= *rounds) {
			return nil
		}
		time.Sleep(*watch)
	}
}

// ingestEndpoint normalizes the -ingest flag: a bare server base URL gets the
// conventional ingest path appended.
func ingestEndpoint(base string) string {
	base = strings.TrimRight(base, "/")
	if strings.HasSuffix(base, ingest.IngestPath) {
		return base
	}
	return base + ingest.IngestPath
}

// pushDelta POSTs the snapshot as one append-only delta at the server's
// current cursor, resynchronizing on a cursor conflict (another producer, or
// a previous push whose acknowledgement was lost).
func pushDelta(baseURL string, snap *crawler.Snapshot) (ingest.Result, error) {
	url := ingestEndpoint(baseURL)
	listings := make([]ingest.Listing, 0, snap.NumRecords())
	for _, rec := range snap.Records() {
		l := ingest.Listing{Record: rec}
		if data, ok := snap.APK(rec.Key()); ok {
			l.APK = data
		}
		listings = append(listings, l)
	}

	cursor, err := fetchCursor(url)
	if err != nil {
		return ingest.Result{}, err
	}
	for attempt := 0; ; attempt++ {
		res, conflict, err := postDelta(url, ingest.Delta{Seq: cursor, Listings: listings})
		if err == nil {
			return res, nil
		}
		if conflict == nil || attempt >= 3 {
			return ingest.Result{}, err
		}
		// 409: another producer advanced the cursor; resync and retry.
		cursor = conflict.cursor
	}
}

// cursorConflict carries the server's expected cursor out of a 409 response.
type cursorConflict struct{ cursor uint64 }

func fetchCursor(url string) (uint64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("cursor probe: %s", resp.Status)
	}
	var cs ingest.CursorState
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		return 0, fmt.Errorf("cursor probe: %w", err)
	}
	return cs.Cursor, nil
}

func postDelta(url string, d ingest.Delta) (ingest.Result, *cursorConflict, error) {
	body, err := json.Marshal(d)
	if err != nil {
		return ingest.Result{}, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return ingest.Result{}, nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var res ingest.Result
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			return ingest.Result{}, nil, fmt.Errorf("delta response: %w", err)
		}
		return res, nil, nil
	case http.StatusConflict:
		var e struct {
			Error  string `json:"error"`
			Cursor uint64 `json:"cursor"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			return ingest.Result{}, nil, fmt.Errorf("cursor conflict (undecodable body): %w", err)
		}
		return ingest.Result{}, &cursorConflict{cursor: e.Cursor}, fmt.Errorf("cursor conflict: %s", e.Error)
	default:
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return ingest.Result{}, nil, fmt.Errorf("delta rejected: %s (%s)", resp.Status, e.Error)
	}
}
