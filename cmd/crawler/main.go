// Command crawler harvests app metadata and APKs from running market servers
// (for example the ones started by the marketsim command) and persists the
// resulting snapshot to disk for later analysis.
//
// Usage:
//
//	crawler -endpoints endpoints.json -out ./snapshot [-seeds pkg1,pkg2,...]
//	        [-apks] [-concurrency 8] [-max-per-market 0]
//	        [-ingest URL] [-watch D] [-rounds N]
//
// The endpoints file is the JSON list printed by marketsim. Seeds are only
// needed for markets that expose related-apps navigation (Google Play);
// catalog- and index-style markets are enumerated automatically.
//
// -ingest streams the crawl into an analysis server (marketsim -analysis, or
// anything mounting internal/ingest's handler): the command probes the
// server's cursor with a GET, POSTs the crawl as one append-only delta at
// that cursor, and resynchronizes on a 409 cursor conflict. Transient
// failures — connection errors, 5xx, 429 — are retried with bounded
// exponential backoff and jitter, re-probing the server's cursor before each
// retry: if a push landed but its acknowledgement was lost (or the server
// restarted and recovered from its WAL), the producer resumes exactly where
// the server's durable cursor says, and the append-only feed makes the
// re-push a server-side no-op rather than a double apply. -watch re-crawls
// at the given interval and pushes each round's delta, following a growing
// catalog (marketsim -hold-back) without restarts; -rounds bounds the loop
// (0 = run until killed).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"time"

	"marketscope/internal/crawler"
	"marketscope/internal/ingest"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "crawler:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("crawler", flag.ContinueOnError)
	endpointsPath := fs.String("endpoints", "", "JSON file listing market endpoints (required)")
	outDir := fs.String("out", "snapshot", "directory to write the snapshot to (empty = don't persist)")
	seedList := fs.String("seeds", "", "comma-separated package names seeding BFS markets")
	fetchAPKs := fs.Bool("apks", true, "download APKs alongside metadata")
	concurrency := fs.Int("concurrency", 8, "number of parallel fetch workers")
	maxPerMarket := fs.Int("max-per-market", 0, "cap on listings per market (0 = unlimited)")
	noParallelSearch := fs.Bool("no-parallel-search", false, "disable the cross-market parallel search")
	ingestURL := fs.String("ingest", "", "analysis server base URL; each crawl is POSTed there as an append-only delta")
	watch := fs.Duration("watch", 0, "re-crawl at this interval, pushing each round's delta (requires -ingest)")
	rounds := fs.Int("rounds", 0, "with -watch, stop after this many crawl rounds (0 = run until killed)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *endpointsPath == "" {
		return fmt.Errorf("-endpoints is required")
	}
	if *watch > 0 && *ingestURL == "" {
		return fmt.Errorf("-watch requires -ingest")
	}
	if *rounds != 0 && *watch <= 0 {
		return fmt.Errorf("-rounds requires -watch")
	}

	blob, err := os.ReadFile(*endpointsPath)
	if err != nil {
		return fmt.Errorf("read endpoints: %w", err)
	}
	var endpoints []crawler.Endpoint
	if err := json.Unmarshal(blob, &endpoints); err != nil {
		return fmt.Errorf("parse endpoints: %w", err)
	}

	var seeds []string
	for _, s := range strings.Split(*seedList, ",") {
		if s = strings.TrimSpace(s); s != "" {
			seeds = append(seeds, s)
		}
	}
	cfg := crawler.Config{
		Endpoints:        endpoints,
		Seeds:            seeds,
		Concurrency:      *concurrency,
		MaxAppsPerMarket: *maxPerMarket,
		FetchAPKs:        *fetchAPKs,
		ParallelSearch:   !*noParallelSearch,
	}

	for round := 1; ; round++ {
		c, err := crawler.New(cfg)
		if err != nil {
			return err
		}
		snap, err := c.Run(context.Background())
		if err != nil {
			return err
		}
		stats := c.Stats()
		fmt.Printf("crawled %d records and %d APKs from %d markets (%d requests, %d not found, %d errors)\n",
			snap.NumRecords(), snap.NumAPKs(), len(snap.Markets()), stats.Requests, stats.NotFound, stats.Errors)
		if *ingestURL != "" {
			res, err := pushDelta(*ingestURL, snap)
			if err != nil {
				return fmt.Errorf("push delta: %w", err)
			}
			fmt.Printf("pushed delta at cursor %d: %d added, %d already known, %d listings live (sealed=%v)\n",
				res.Seq, res.Added, res.Skipped, res.Listings, res.Sealed)
		}
		if *outDir != "" {
			if err := snap.Save(*outDir); err != nil {
				return err
			}
			fmt.Printf("snapshot written to %s\n", *outDir)
		}
		if *watch <= 0 || (*rounds > 0 && round >= *rounds) {
			return nil
		}
		time.Sleep(*watch)
	}
}

// ingestEndpoint normalizes the -ingest flag: a bare server base URL gets the
// conventional ingest path appended.
func ingestEndpoint(base string) string {
	base = strings.TrimRight(base, "/")
	if strings.HasSuffix(base, ingest.IngestPath) {
		return base
	}
	return base + ingest.IngestPath
}

// Push retry policy: transient failures (connection errors, 5xx, 429) back
// off exponentially from retryBase, capped at retryMax, with full jitter in
// the upper half of each window, for at most retryAttempts tries overall.
const (
	retryAttempts = 6
	retryBase     = 200 * time.Millisecond
	retryMax      = 5 * time.Second
)

// retrySleep is swapped out by tests so backoff does not slow them down.
var retrySleep = time.Sleep

// backoffDelay returns the randomized delay before retry number attempt
// (0-based): uniformly within [d/2, d) for d = retryBase << attempt, capped.
func backoffDelay(attempt int, rng *rand.Rand) time.Duration {
	d := retryBase << attempt
	if d > retryMax || d <= 0 {
		d = retryMax
	}
	return d/2 + time.Duration(rng.Int63n(int64(d/2)))
}

// transientStatus reports whether an HTTP status is worth retrying: server
// trouble and throttling, never client errors.
func transientStatus(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// pushDelta POSTs the snapshot as one append-only delta at the server's
// current cursor. Cursor conflicts (another producer, or a push whose ack was
// lost) resync from the 409's cursor; transient failures back off and
// re-probe the server's cursor before retrying, so a reconnect always resumes
// from the server's durable position — where re-pushing already-landed
// listings is a server-side no-op.
func pushDelta(baseURL string, snap *crawler.Snapshot) (ingest.Result, error) {
	url := ingestEndpoint(baseURL)
	listings := make([]ingest.Listing, 0, snap.NumRecords())
	for _, rec := range snap.Records() {
		l := ingest.Listing{Record: rec}
		if data, ok := snap.APK(rec.Key()); ok {
			l.APK = data
		}
		listings = append(listings, l)
	}

	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	var lastErr error
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if attempt > 0 {
			retrySleep(backoffDelay(attempt-1, rng))
		}
		cursor, transient, err := fetchCursor(url)
		if err != nil {
			lastErr = err
			if transient {
				continue
			}
			return ingest.Result{}, err
		}
		resyncs := 0
		for {
			res, conflict, transient, err := postDelta(url, ingest.Delta{Seq: cursor, Listings: listings})
			if err == nil {
				return res, nil
			}
			lastErr = err
			if conflict != nil && resyncs < 3 {
				// 409: another producer advanced the cursor; resync and retry
				// immediately — the server told us exactly where to go.
				cursor, resyncs = conflict.cursor, resyncs+1
				continue
			}
			if transient {
				break // back off, then re-probe the cursor
			}
			return ingest.Result{}, err
		}
	}
	return ingest.Result{}, fmt.Errorf("giving up after %d attempts: %w", retryAttempts, lastErr)
}

// cursorConflict carries the server's expected cursor out of a 409 response.
type cursorConflict struct{ cursor uint64 }

func fetchCursor(url string) (cursor uint64, transient bool, err error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, true, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, transientStatus(resp.StatusCode), fmt.Errorf("cursor probe: %s", resp.Status)
	}
	var cs ingest.CursorState
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		return 0, true, fmt.Errorf("cursor probe: %w", err)
	}
	return cs.Cursor, false, nil
}

func postDelta(url string, d ingest.Delta) (ingest.Result, *cursorConflict, bool, error) {
	body, err := json.Marshal(d)
	if err != nil {
		return ingest.Result{}, nil, false, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return ingest.Result{}, nil, true, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var res ingest.Result
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			return ingest.Result{}, nil, true, fmt.Errorf("delta response: %w", err)
		}
		return res, nil, false, nil
	case http.StatusConflict:
		var e struct {
			Error  string `json:"error"`
			Cursor uint64 `json:"cursor"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			return ingest.Result{}, nil, true, fmt.Errorf("cursor conflict (undecodable body): %w", err)
		}
		return ingest.Result{}, &cursorConflict{cursor: e.Cursor}, false, fmt.Errorf("cursor conflict: %s", e.Error)
	default:
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return ingest.Result{}, nil, transientStatus(resp.StatusCode), fmt.Errorf("delta rejected: %s (%s)", resp.Status, e.Error)
	}
}
