package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"marketscope/internal/crawler"
	"marketscope/internal/synth"
)

// TestMarketsimServesGeneratedEcosystem boots the command against a tiny
// synth snapshot on ephemeral ports, waits for the endpoints file, probes one
// market over HTTP and then shuts the command down cleanly.
func TestMarketsimServesGeneratedEcosystem(t *testing.T) {
	endpointsPath := filepath.Join(t.TempDir(), "endpoints.json")
	stop := make(chan os.Signal, 1)
	var buf bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-apps", "40", "-developers", "18", "-seed", "11",
			"-port", "0", "-endpoints", endpointsPath,
		}, &buf, stop)
	}()

	// The endpoints file is written after every listener is up.
	var endpoints []crawler.Endpoint
	deadline := time.Now().Add(30 * time.Second)
	for {
		blob, err := os.ReadFile(endpointsPath)
		if err == nil {
			if err := json.Unmarshal(blob, &endpoints); err != nil {
				t.Fatalf("endpoints file malformed: %v", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("endpoints file never appeared")
		}
		select {
		case err := <-done:
			t.Fatalf("marketsim exited early: %v", err)
		case <-time.After(20 * time.Millisecond):
		}
	}
	if len(endpoints) == 0 {
		t.Fatal("no endpoints published")
	}

	// Every market must answer its info route with its own name.
	for _, ep := range endpoints {
		resp, err := http.Get(ep.BaseURL + "/api/info")
		if err != nil {
			t.Fatalf("%s unreachable: %v", ep.Name, err)
		}
		body := struct {
			Name string `json:"name"`
		}{}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: bad info payload: %v", ep.Name, err)
		}
		if body.Name != ep.Name {
			t.Errorf("%s reported name %q", ep.Name, body.Name)
		}
	}

	stop <- os.Interrupt
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}

	out := buf.String()
	if !strings.Contains(out, "serving") || !strings.Contains(out, "listings") {
		t.Errorf("missing serving banner in output:\n%s", out)
	}
	for _, ep := range endpoints {
		if !strings.Contains(out, ep.Name) {
			t.Errorf("market %s missing from output", ep.Name)
		}
	}
}

// waitEndpoints polls for the endpoints file the command writes once every
// listener is up.
func waitEndpoints(t *testing.T, path string, done <-chan error) []crawler.Endpoint {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		blob, err := os.ReadFile(path)
		if err == nil {
			var endpoints []crawler.Endpoint
			if err := json.Unmarshal(blob, &endpoints); err != nil {
				t.Fatalf("endpoints file malformed: %v", err)
			}
			return endpoints
		}
		if time.Now().After(deadline) {
			t.Fatal("endpoints file never appeared")
		}
		select {
		case err := <-done:
			t.Fatalf("marketsim exited early: %v", err)
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// TestMarketsimAnalysisIngestEndpoint boots the command with -analysis and
// drives the delta-fed analysis endpoint end to end over HTTP: cursor probe,
// delta push, and a scan observing the published epoch.
func TestMarketsimAnalysisIngestEndpoint(t *testing.T) {
	endpointsPath := filepath.Join(t.TempDir(), "endpoints.json")
	stop := make(chan os.Signal, 1)
	var buf bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-apps", "40", "-developers", "18", "-seed", "11",
			"-port", "0", "-endpoints", endpointsPath, "-analysis",
		}, &buf, stop)
	}()
	endpoints := waitEndpoints(t, endpointsPath, done)

	var base string
	for _, ep := range endpoints {
		if ep.Name == "analysis" {
			base = ep.BaseURL
		}
	}
	if base == "" {
		t.Fatalf("no analysis endpoint published: %+v", endpoints)
	}

	getCursor := func() (cursor uint64, listings int) {
		resp, err := http.Get(base + "/api/ingest")
		if err != nil {
			t.Fatalf("cursor probe: %v", err)
		}
		defer resp.Body.Close()
		var cs struct {
			Cursor   uint64 `json:"cursor"`
			Listings int    `json:"listings"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
			t.Fatalf("cursor body: %v", err)
		}
		return cs.Cursor, cs.Listings
	}
	if cursor, listings := getCursor(); cursor != 0 || listings != 0 {
		t.Fatalf("fresh analysis server at cursor %d with %d listings", cursor, listings)
	}

	delta := `{"seq": 0, "listings": [
		{"record": {"market": "Google Play", "package": "com.example.pushed",
		            "app_name": "Pushed", "category": "tools", "developer_name": "dev",
		            "downloads": 100, "rating": 4.5}}]}`
	resp, err := http.Post(base+"/api/ingest", "application/json", strings.NewReader(delta))
	if err != nil {
		t.Fatalf("push delta: %v", err)
	}
	var res struct {
		Applied bool `json:"applied"`
		Added   int  `json:"added"`
	}
	err = json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	if err != nil || !res.Applied || res.Added != 1 {
		t.Fatalf("delta result %+v (err %v)", res, err)
	}
	if cursor, listings := getCursor(); cursor != 1 || listings != 1 {
		t.Fatalf("after delta: cursor %d, %d listings", cursor, listings)
	}

	resp, err = http.Post(base+"/api/scan", "application/json",
		strings.NewReader(`{"fields":["package"],"filters":[{"field":"market","op":"==","value":"Google Play"}]}`))
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	var scan struct {
		Rows [][]any `json:"rows"`
	}
	err = json.NewDecoder(resp.Body).Decode(&scan)
	resp.Body.Close()
	if err != nil || len(scan.Rows) != 1 || scan.Rows[0][0] != "com.example.pushed" {
		t.Fatalf("scan after publish: rows %+v (err %v)", scan.Rows, err)
	}

	stop <- os.Interrupt
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestMarketsimHoldBackRelease boots the command with half of every catalog
// withheld and a fast release ticker, and waits for the markets to grow back
// to the full ecosystem size.
func TestMarketsimHoldBackRelease(t *testing.T) {
	// The expected full size comes from regenerating the same seed.
	cfg := synth.DefaultConfig()
	cfg.NumApps = 40
	cfg.NumDevelopers = 18
	cfg.Seed = 11
	eco, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := eco.NumListings()

	endpointsPath := filepath.Join(t.TempDir(), "endpoints.json")
	stop := make(chan os.Signal, 1)
	var buf bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-apps", "40", "-developers", "18", "-seed", "11",
			"-port", "0", "-endpoints", endpointsPath,
			"-hold-back", "0.5", "-release-every", "25ms", "-release-batch", "40",
		}, &buf, stop)
	}()
	endpoints := waitEndpoints(t, endpointsPath, done)

	countListings := func() int {
		sum := 0
		for _, ep := range endpoints {
			resp, err := http.Get(ep.BaseURL + "/api/info")
			if err != nil {
				t.Fatalf("%s: %v", ep.Name, err)
			}
			var info struct {
				NumApps int `json:"num_apps"`
			}
			err = json.NewDecoder(resp.Body).Decode(&info)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("%s info: %v", ep.Name, err)
			}
			sum += info.NumApps
		}
		return sum
	}
	deadline := time.Now().Add(30 * time.Second)
	for countListings() != total {
		if time.Now().After(deadline) {
			t.Fatalf("catalogs stuck at %d listings, want %d", countListings(), total)
		}
		time.Sleep(25 * time.Millisecond)
	}

	stop <- os.Interrupt
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "holding back") {
		t.Errorf("missing hold-back banner in output:\n%s", buf.String())
	}
}

func TestMarketsimRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &buf, nil); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-apps", "1", "-developers", "1"}, &buf, nil); err == nil {
		t.Error("invalid synth config accepted")
	}
	// An unwritable endpoints path must surface as an error, not hang.
	stop := make(chan os.Signal, 1)
	stop <- os.Interrupt
	badPath := filepath.Join(t.TempDir(), "missing-dir", "endpoints.json")
	if err := run([]string{"-apps", "40", "-developers", "18", "-port", "0", "-endpoints", badPath}, &buf, stop); err == nil {
		t.Error("unwritable endpoints path accepted")
	}
	if err := run([]string{"-hold-back", "1.5"}, &buf, nil); err == nil {
		t.Error("out-of-range -hold-back accepted")
	}
	if err := run([]string{"-hold-back", "0.5", "-release-batch", "0"}, &buf, nil); err == nil {
		t.Error("-hold-back with zero release batch accepted")
	}
	if err := run([]string{"-data-dir", t.TempDir()}, &buf, nil); err == nil {
		t.Error("-data-dir without -analysis accepted")
	}
	if err := run([]string{"-analysis", "-data-dir", t.TempDir(), "-fsync", "sometimes"}, &buf, nil); err == nil {
		t.Error("unknown -fsync policy accepted")
	}
	if err := run([]string{"-analysis", "-data-dir", t.TempDir(), "-snapshot-every", "-1"}, &buf, nil); err == nil {
		t.Error("negative -snapshot-every accepted")
	}
	if err := run([]string{"-analysis", "-page-budget", "1024"}, &buf, nil); err == nil {
		t.Error("-page-budget without -data-dir accepted")
	}
}

// TestMarketsimDurableAnalysisRestart boots the command with a durable
// analysis endpoint, pushes a delta, shuts down, and boots again on the same
// -data-dir: the ingested state must be recovered (served and at the right
// cursor) before the first request, a replayed push must be an acked no-op,
// and /metrics must expose the durable_* gauges.
func TestMarketsimDurableAnalysisRestart(t *testing.T) {
	dataDir := filepath.Join(t.TempDir(), "state")
	boot := func(buf *bytes.Buffer) (base string, stop chan os.Signal, done chan error) {
		endpointsPath := filepath.Join(t.TempDir(), "endpoints.json")
		stop = make(chan os.Signal, 1)
		done = make(chan error, 1)
		go func() {
			done <- run([]string{
				"-apps", "40", "-developers", "18", "-seed", "11",
				"-port", "0", "-endpoints", endpointsPath,
				"-analysis", "-data-dir", dataDir, "-fsync", "always",
			}, buf, stop)
		}()
		for _, ep := range waitEndpoints(t, endpointsPath, done) {
			if ep.Name == "analysis" {
				base = ep.BaseURL
			}
		}
		if base == "" {
			t.Fatal("no analysis endpoint published")
		}
		return base, stop, done
	}
	shutdown := func(stop chan os.Signal, done chan error) {
		stop <- os.Interrupt
		if err := <-done; err != nil {
			t.Fatalf("run: %v", err)
		}
	}
	getCursor := func(base string) (cursor uint64, listings int) {
		resp, err := http.Get(base + "/api/ingest")
		if err != nil {
			t.Fatalf("cursor probe: %v", err)
		}
		defer resp.Body.Close()
		var cs struct {
			Cursor   uint64 `json:"cursor"`
			Listings int    `json:"listings"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
			t.Fatalf("cursor body: %v", err)
		}
		return cs.Cursor, cs.Listings
	}
	delta := `{"seq": 0, "listings": [
		{"record": {"market": "Google Play", "package": "com.example.durable",
		            "app_name": "Durable", "category": "tools", "developer_name": "dev",
		            "downloads": 100, "rating": 4.5}}]}`
	push := func(base string) (applied bool, added int) {
		resp, err := http.Post(base+"/api/ingest", "application/json", strings.NewReader(delta))
		if err != nil {
			t.Fatalf("push delta: %v", err)
		}
		defer resp.Body.Close()
		var res struct {
			Applied bool `json:"applied"`
			Added   int  `json:"added"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatalf("delta result: %v", err)
		}
		return res.Applied, res.Added
	}

	var buf1 bytes.Buffer
	base, stop, done := boot(&buf1)
	if applied, added := push(base); !applied || added != 1 {
		t.Fatalf("first push: applied=%v added=%d", applied, added)
	}
	shutdown(stop, done)

	// Second boot on the same directory: state recovered before serving.
	var buf2 bytes.Buffer
	base, stop, done = boot(&buf2)
	if cursor, listings := getCursor(base); cursor != 1 || listings != 1 {
		t.Fatalf("recovered state: cursor %d, %d listings", cursor, listings)
	}
	// The reconnecting producer replays its batch: acked no-op.
	if applied, added := push(base); applied || added != 0 {
		t.Fatalf("replayed push: applied=%v added=%d", applied, added)
	}
	// The recovered engine serves scans immediately.
	resp, err := http.Post(base+"/api/scan", "application/json",
		strings.NewReader(`{"fields":["package"]}`))
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	var scan struct {
		Rows [][]any `json:"rows"`
	}
	err = json.NewDecoder(resp.Body).Decode(&scan)
	resp.Body.Close()
	if err != nil || len(scan.Rows) != 1 || scan.Rows[0][0] != "com.example.durable" {
		t.Fatalf("scan after recovery: rows %+v (err %v)", scan.Rows, err)
	}
	// Durability gauges ride /metrics; the first shutdown wrote a parting
	// snapshot at generation 1, so this boot loaded it instead of replaying.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(blob)
	for _, want := range []string{
		"durable_wal_records_replayed 0",
		"durable_last_snapshot_generation 1",
		"durable_snapshot_corrupt_quarantined 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
	shutdown(stop, done)

	if !strings.Contains(buf2.String(), "durable in "+dataDir) {
		t.Errorf("missing durable banner in output:\n%s", buf2.String())
	}
}

// TestMarketsimPagedAnalysisRestart is the durable restart flow with lazy
// paging on: the first boot ingests and leaves a parting snapshot, the second
// boots with -page-budget and must recover from that snapshot without
// materializing it — serving the ingested row, advancing the paged_* gauges
// on /metrics, and shutting down cleanly.
func TestMarketsimPagedAnalysisRestart(t *testing.T) {
	dataDir := filepath.Join(t.TempDir(), "state")
	boot := func(buf *bytes.Buffer, extra ...string) (base string, stop chan os.Signal, done chan error) {
		endpointsPath := filepath.Join(t.TempDir(), "endpoints.json")
		stop = make(chan os.Signal, 1)
		done = make(chan error, 1)
		args := append([]string{
			"-apps", "40", "-developers", "18", "-seed", "11",
			"-port", "0", "-endpoints", endpointsPath,
			"-analysis", "-data-dir", dataDir, "-fsync", "always",
		}, extra...)
		go func() { done <- run(args, buf, stop) }()
		for _, ep := range waitEndpoints(t, endpointsPath, done) {
			if ep.Name == "analysis" {
				base = ep.BaseURL
			}
		}
		if base == "" {
			t.Fatal("no analysis endpoint published")
		}
		return base, stop, done
	}
	shutdown := func(stop chan os.Signal, done chan error) {
		stop <- os.Interrupt
		if err := <-done; err != nil {
			t.Fatalf("run: %v", err)
		}
	}

	var buf1 bytes.Buffer
	base, stop, done := boot(&buf1)
	delta := `{"seq": 0, "listings": [
		{"record": {"market": "Google Play", "package": "com.example.paged",
		            "app_name": "Paged", "category": "tools", "developer_name": "dev",
		            "downloads": 100, "rating": 4.5}}]}`
	resp, err := http.Post(base+"/api/ingest", "application/json", strings.NewReader(delta))
	if err != nil {
		t.Fatalf("push delta: %v", err)
	}
	var res struct {
		Applied bool `json:"applied"`
	}
	err = json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	if err != nil || !res.Applied {
		t.Fatalf("push: %+v (err %v)", res, err)
	}
	shutdown(stop, done)

	// Second boot pages lazily out of the parting snapshot.
	var buf2 bytes.Buffer
	base, stop, done = boot(&buf2, "-page-budget", "-1")
	resp, err = http.Post(base+"/api/scan", "application/json",
		strings.NewReader(`{"fields":["package"]}`))
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	var scan struct {
		Rows [][]any `json:"rows"`
	}
	err = json.NewDecoder(resp.Body).Decode(&scan)
	resp.Body.Close()
	if err != nil || len(scan.Rows) != 1 || scan.Rows[0][0] != "com.example.paged" {
		t.Fatalf("paged scan after recovery: rows %+v (err %v)", scan.Rows, err)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(blob)
	for _, want := range []string{"paged_resident_bytes", "paged_fetches", "paged_evictions"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
	// The scan forced at least one column in.
	var fetches float64
	for _, line := range strings.Split(metrics, "\n") {
		if n, err := fmt.Sscanf(line, "paged_fetches %f", &fetches); n == 1 && err == nil {
			break
		}
	}
	if fetches == 0 {
		t.Errorf("paged engine served without fetching:\n%s", metrics)
	}
	shutdown(stop, done)
}
