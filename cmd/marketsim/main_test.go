package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"marketscope/internal/crawler"
)

// TestMarketsimServesGeneratedEcosystem boots the command against a tiny
// synth snapshot on ephemeral ports, waits for the endpoints file, probes one
// market over HTTP and then shuts the command down cleanly.
func TestMarketsimServesGeneratedEcosystem(t *testing.T) {
	endpointsPath := filepath.Join(t.TempDir(), "endpoints.json")
	stop := make(chan os.Signal, 1)
	var buf bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-apps", "40", "-developers", "18", "-seed", "11",
			"-port", "0", "-endpoints", endpointsPath,
		}, &buf, stop)
	}()

	// The endpoints file is written after every listener is up.
	var endpoints []crawler.Endpoint
	deadline := time.Now().Add(30 * time.Second)
	for {
		blob, err := os.ReadFile(endpointsPath)
		if err == nil {
			if err := json.Unmarshal(blob, &endpoints); err != nil {
				t.Fatalf("endpoints file malformed: %v", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("endpoints file never appeared")
		}
		select {
		case err := <-done:
			t.Fatalf("marketsim exited early: %v", err)
		case <-time.After(20 * time.Millisecond):
		}
	}
	if len(endpoints) == 0 {
		t.Fatal("no endpoints published")
	}

	// Every market must answer its info route with its own name.
	for _, ep := range endpoints {
		resp, err := http.Get(ep.BaseURL + "/api/info")
		if err != nil {
			t.Fatalf("%s unreachable: %v", ep.Name, err)
		}
		body := struct {
			Name string `json:"name"`
		}{}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: bad info payload: %v", ep.Name, err)
		}
		if body.Name != ep.Name {
			t.Errorf("%s reported name %q", ep.Name, body.Name)
		}
	}

	stop <- os.Interrupt
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}

	out := buf.String()
	if !strings.Contains(out, "serving") || !strings.Contains(out, "listings") {
		t.Errorf("missing serving banner in output:\n%s", out)
	}
	for _, ep := range endpoints {
		if !strings.Contains(out, ep.Name) {
			t.Errorf("market %s missing from output", ep.Name)
		}
	}
}

func TestMarketsimRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &buf, nil); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-apps", "1", "-developers", "1"}, &buf, nil); err == nil {
		t.Error("invalid synth config accepted")
	}
	// An unwritable endpoints path must surface as an error, not hang.
	stop := make(chan os.Signal, 1)
	stop <- os.Interrupt
	badPath := filepath.Join(t.TempDir(), "missing-dir", "endpoints.json")
	if err := run([]string{"-apps", "40", "-developers", "18", "-port", "0", "-endpoints", badPath}, &buf, stop); err == nil {
		t.Error("unwritable endpoints path accepted")
	}
}
