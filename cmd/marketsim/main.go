// Command marketsim generates a synthetic ecosystem and serves every market
// over HTTP on consecutive loopback ports so that an external crawler (the
// crawler command, or any HTTP client) can harvest it.
//
// Usage:
//
//	marketsim [-apps N] [-developers N] [-seed S] [-port 8100] [-endpoints FILE]
//	          [-cache-bytes N] [-timeout D] [-max-inflight N] [-queue N]
//	          [-rate R] [-gzip=false]
//
// With -port 0 every market binds an ephemeral port instead of a consecutive
// range, which is what the smoke tests use to avoid port collisions.
//
// Each market serves through the production serving layer: a query-result
// cache, per-request timeouts, an inflight cap with bounded queueing (503 +
// Retry-After when saturated), optional per-client rate limiting and gzip.
// /healthz and /metrics (Prometheus text format) are mounted on every
// market, and a per-market serving summary prints on shutdown.
//
// The endpoint list (market name and base URL, JSON) is printed to stdout and
// optionally written to a file that the crawler command accepts directly.
// The process serves until interrupted.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"marketscope/internal/crawler"
	"marketscope/internal/market"
	"marketscope/internal/report"
	"marketscope/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "marketsim:", err)
		os.Exit(1)
	}
}

// run serves the generated ecosystem until stop delivers a value (or, when
// stop is nil, until the process receives SIGINT/SIGTERM). Tests pass their
// own stop channel and a buffer for stdout.
func run(args []string, stdout io.Writer, stop <-chan os.Signal) error {
	fs := flag.NewFlagSet("marketsim", flag.ContinueOnError)
	apps := fs.Int("apps", 600, "number of distinct apps to generate")
	developers := fs.Int("developers", 220, "number of developer identities")
	seed := fs.Uint64("seed", 20170815, "generation seed")
	port := fs.Int("port", 8100, "first listening port; each market uses the next port (0 = ephemeral ports)")
	endpointsPath := fs.String("endpoints", "", "write the endpoint list (JSON) to this file")
	defaults := market.DefaultServeConfig()
	cacheBytes := fs.Int64("cache-bytes", defaults.CacheBytes, "per-market query-result cache budget in bytes (0 = cache off)")
	timeout := fs.Duration("timeout", defaults.Timeout, "per-request execution deadline (0 = none)")
	maxInflight := fs.Int("max-inflight", defaults.MaxInflight, "concurrent requests per market before queueing (0 = unlimited)")
	queue := fs.Int("queue", defaults.MaxQueue, "requests queued beyond max-inflight before shedding with 503")
	rate := fs.Float64("rate", defaults.RatePerSecond, "per-client request rate limit in req/s (0 = off)")
	gzipOn := fs.Bool("gzip", defaults.Gzip, "gzip-compress responses for clients that accept it")
	if err := fs.Parse(args); err != nil {
		return err
	}
	serveCfg := market.ServeConfig{
		CacheBytes:    *cacheBytes,
		Timeout:       *timeout,
		MaxInflight:   *maxInflight,
		MaxQueue:      *queue,
		RatePerSecond: *rate,
		Gzip:          *gzipOn,
	}

	cfg := synth.DefaultConfig()
	cfg.NumApps = *apps
	cfg.NumDevelopers = *developers
	cfg.Seed = *seed
	eco, err := synth.Generate(cfg)
	if err != nil {
		return fmt.Errorf("generate ecosystem: %w", err)
	}
	stores, err := eco.Populate()
	if err != nil {
		return fmt.Errorf("populate markets: %w", err)
	}

	names := make([]string, 0, len(stores))
	for name := range stores {
		names = append(names, name)
	}
	sort.Strings(names)

	var (
		wg        sync.WaitGroup
		servers   []*http.Server
		markets   []*market.Server
		endpoints []crawler.Endpoint
	)
	for i, name := range names {
		addr := fmt.Sprintf("127.0.0.1:%d", *port+i)
		if *port == 0 {
			addr = "127.0.0.1:0"
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return fmt.Errorf("listen %s for %s: %w", addr, name, err)
		}
		addr = ln.Addr().String()
		ms := market.NewServer(stores[name])
		ms.ConfigureServing(serveCfg)
		markets = append(markets, ms)
		srv := &http.Server{Handler: ms, ReadHeaderTimeout: 5 * time.Second}
		servers = append(servers, srv)
		endpoints = append(endpoints, crawler.Endpoint{Name: name, BaseURL: "http://" + addr})
		wg.Add(1)
		go func(s *http.Server, l net.Listener, marketName string) {
			defer wg.Done()
			if err := s.Serve(l); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "marketsim: %s: %v\n", marketName, err)
			}
		}(srv, ln, name)
		fmt.Fprintf(stdout, "%-16s %s  (%d apps)\n", name, "http://"+addr, stores[name].Len())
	}

	blob, err := json.MarshalIndent(endpoints, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, string(blob))
	if *endpointsPath != "" {
		if err := os.WriteFile(*endpointsPath, blob, 0o644); err != nil {
			return fmt.Errorf("write endpoints: %w", err)
		}
	}
	fmt.Fprintf(stdout, "serving %d markets with %d listings; Ctrl-C to stop\n", len(stores), eco.NumListings())

	if stop == nil {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		stop = ch
	}
	<-stop

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, srv := range servers {
		_ = srv.Shutdown(ctx)
	}
	wg.Wait()

	for i, name := range names {
		if st := markets[i].ServingStats(); st.Requests > 0 {
			fmt.Fprint(stdout, report.ServeStats(name, st))
		}
	}
	return nil
}
