// Command marketsim generates a synthetic ecosystem and serves every market
// over HTTP on consecutive loopback ports so that an external crawler (the
// crawler command, or any HTTP client) can harvest it.
//
// Usage:
//
//	marketsim [-apps N] [-developers N] [-seed S] [-port 8100] [-endpoints FILE]
//	          [-cache-bytes N] [-timeout D] [-max-inflight N] [-queue N]
//	          [-rate R] [-gzip=false]
//	          [-analysis] [-hold-back F] [-release-every D] [-release-batch N]
//	          [-data-dir DIR] [-fsync always|interval|off] [-fsync-interval D]
//	          [-snapshot-every N] [-page-budget BYTES] [-page-retry N]
//
// With -port 0 every market binds an ephemeral port instead of a consecutive
// range, which is what the smoke tests use to avoid port collisions.
//
// Each market serves through the production serving layer: a query-result
// cache, per-request timeouts, an inflight cap with bounded queueing (503 +
// Retry-After when saturated), optional per-client rate limiting and gzip.
// /healthz and /metrics (Prometheus text format) are mounted on every
// market, and a per-market serving summary prints on shutdown.
//
// -analysis additionally serves an "analysis" endpoint: a scan/aggregate
// server fed exclusively through POSTed listing deltas on /api/ingest (see
// internal/ingest). Each accepted delta builds the next dataset epoch
// incrementally and publishes its engine with an atomic source swap, so the
// crawler command's -ingest/-watch flags can stream crawls into a live query
// service with no restarts.
//
// -data-dir makes the analysis endpoint durable: every accepted delta is
// appended to a write-ahead log under DIR before it is acknowledged, periodic
// checksummed snapshots of the sealed column store bound replay time, and a
// restart with the same -data-dir recovers the exact ingested state (cold
// start = newest valid snapshot + WAL tail) before serving. -fsync picks the
// WAL durability/throughput trade-off and -snapshot-every the snapshot
// cadence; see internal/durable. The endpoint's /metrics additionally exposes
// the durable_* recovery and snapshot gauges.
//
// -page-budget serves a recovered corpus bigger than RAM: snapshot columns
// stay on disk and page in on first touch, with at most BYTES of decoded
// column data resident (scans in flight always complete — their pinned
// working set is exempt). A request whose working set cannot be pinned, or
// whose column fetch keeps failing past -page-retry attempts, degrades to a
// clean 503 with Retry-After rather than a wrong answer. 0 (the default)
// materializes everything eagerly; negative pages lazily without a bound.
// Requires -data-dir. The endpoint's /metrics exposes the paged_* residency
// and fault gauges.
//
// On SIGINT/SIGTERM the process stops accepting connections, drains in-flight
// requests under a deadline, then flushes the WAL and writes a parting
// snapshot before exiting — a restart with the same -data-dir recovers every
// acknowledged delta.
//
// -hold-back withholds a fraction of every market's catalog at startup and
// releases it in batches while the process serves (-release-every,
// -release-batch), turning the static snapshot into a growing feed — the
// scenario the incremental ingest path exists for.
//
// The endpoint list (market name and base URL, JSON) is printed to stdout and
// optionally written to a file that the crawler command accepts directly.
// The process serves until interrupted.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"marketscope/internal/analysis"
	"marketscope/internal/appmeta"
	"marketscope/internal/crawler"
	"marketscope/internal/durable"
	"marketscope/internal/ingest"
	"marketscope/internal/market"
	"marketscope/internal/report"
	"marketscope/internal/synth"
)

// drainTimeout bounds the graceful-shutdown drain: in-flight requests get
// this long to finish after the listener stops accepting.
const drainTimeout = 5 * time.Second

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "marketsim:", err)
		os.Exit(1)
	}
}

// heldListing is one listing withheld from its store at startup, waiting for
// the release ticker.
type heldListing struct {
	store *market.Store
	meta  appmeta.Record
	apk   []byte
}

// run serves the generated ecosystem until stop delivers a value (or, when
// stop is nil, until the process receives SIGINT/SIGTERM). Tests pass their
// own stop channel and a buffer for stdout.
func run(args []string, stdout io.Writer, stop <-chan os.Signal) error {
	fs := flag.NewFlagSet("marketsim", flag.ContinueOnError)
	apps := fs.Int("apps", 600, "number of distinct apps to generate")
	developers := fs.Int("developers", 220, "number of developer identities")
	seed := fs.Uint64("seed", 20170815, "generation seed")
	port := fs.Int("port", 8100, "first listening port; each market uses the next port (0 = ephemeral ports)")
	endpointsPath := fs.String("endpoints", "", "write the endpoint list (JSON) to this file")
	defaults := market.DefaultServeConfig()
	cacheBytes := fs.Int64("cache-bytes", defaults.CacheBytes, "per-market query-result cache budget in bytes (0 = cache off)")
	timeout := fs.Duration("timeout", defaults.Timeout, "per-request execution deadline (0 = none)")
	maxInflight := fs.Int("max-inflight", defaults.MaxInflight, "concurrent requests per market before queueing (0 = unlimited)")
	queue := fs.Int("queue", defaults.MaxQueue, "requests queued beyond max-inflight before shedding with 503")
	rate := fs.Float64("rate", defaults.RatePerSecond, "per-client request rate limit in req/s (0 = off)")
	gzipOn := fs.Bool("gzip", defaults.Gzip, "gzip-compress responses for clients that accept it")
	analysisOn := fs.Bool("analysis", false, "serve an analysis endpoint fed by listing deltas POSTed to /api/ingest")
	dataDir := fs.String("data-dir", "", "durable state directory for the analysis endpoint: WAL + snapshots, recovered on restart (requires -analysis)")
	fsyncMode := fs.String("fsync", "always", "WAL sync policy with -data-dir: always (ack = durable), interval (periodic), off (page cache only)")
	fsyncEvery := fs.Duration("fsync-interval", 100*time.Millisecond, "WAL sync period with -fsync=interval")
	snapshotEvery := fs.Int("snapshot-every", 64, "write a column-store snapshot every N applied deltas with -data-dir (0 = only at shutdown)")
	pageBudget := fs.Int64("page-budget", 0, "resident byte budget for lazily paged snapshot columns with -data-dir (0 = materialize eagerly, negative = page without a bound)")
	pageRetry := fs.Int("page-retry", 2, "transient column-fetch retries before a paged request degrades to 503")
	holdBack := fs.Float64("hold-back", 0, "fraction of each market's catalog withheld at startup and released while serving (0..0.9)")
	releaseEvery := fs.Duration("release-every", 5*time.Second, "interval between releases of held-back listings")
	releaseBatch := fs.Int("release-batch", 25, "held-back listings released per interval")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *holdBack < 0 || *holdBack > 0.9 {
		return fmt.Errorf("-hold-back %g out of range [0, 0.9]", *holdBack)
	}
	if *holdBack > 0 && (*releaseEvery <= 0 || *releaseBatch <= 0) {
		return fmt.Errorf("-hold-back needs positive -release-every and -release-batch")
	}
	if *dataDir != "" && !*analysisOn {
		return fmt.Errorf("-data-dir requires -analysis")
	}
	fsyncPolicy, err := durable.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		return err
	}
	if *snapshotEvery < 0 {
		return fmt.Errorf("-snapshot-every %d must be >= 0", *snapshotEvery)
	}
	if *pageBudget != 0 && *dataDir == "" {
		return fmt.Errorf("-page-budget requires -data-dir")
	}
	serveCfg := market.ServeConfig{
		CacheBytes:    *cacheBytes,
		Timeout:       *timeout,
		MaxInflight:   *maxInflight,
		MaxQueue:      *queue,
		RatePerSecond: *rate,
		Gzip:          *gzipOn,
	}

	cfg := synth.DefaultConfig()
	cfg.NumApps = *apps
	cfg.NumDevelopers = *developers
	cfg.Seed = *seed
	eco, err := synth.Generate(cfg)
	if err != nil {
		return fmt.Errorf("generate ecosystem: %w", err)
	}
	stores, err := eco.Populate()
	if err != nil {
		return fmt.Errorf("populate markets: %w", err)
	}

	names := make([]string, 0, len(stores))
	for name := range stores {
		names = append(names, name)
	}
	sort.Strings(names)

	// Withhold the tail of each catalog (in insertion order, so the released
	// listings arrive in the same popularity order Populate used).
	var held []heldListing
	if *holdBack > 0 {
		for _, name := range names {
			rebuilt, withheld, err := withholdSuffix(stores[name], *holdBack)
			if err != nil {
				return fmt.Errorf("hold back %s: %w", name, err)
			}
			stores[name] = rebuilt
			held = append(held, withheld...)
		}
	}

	var (
		wg        sync.WaitGroup
		servers   []*http.Server
		markets   []*market.Server
		endpoints []crawler.Endpoint
	)
	listen := func(i int) (net.Listener, error) {
		addr := fmt.Sprintf("127.0.0.1:%d", *port+i)
		if *port == 0 {
			addr = "127.0.0.1:0"
		}
		return net.Listen("tcp", addr)
	}
	serve := func(name string, ms *market.Server, ln net.Listener) string {
		markets = append(markets, ms)
		srv := &http.Server{Handler: ms, ReadHeaderTimeout: 5 * time.Second}
		servers = append(servers, srv)
		base := "http://" + ln.Addr().String()
		endpoints = append(endpoints, crawler.Endpoint{Name: name, BaseURL: base})
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "marketsim: %s: %v\n", name, err)
			}
		}()
		return base
	}
	for i, name := range names {
		ln, err := listen(i)
		if err != nil {
			return fmt.Errorf("listen for %s: %w", name, err)
		}
		ms := market.NewServer(stores[name])
		ms.ConfigureServing(serveCfg)
		base := serve(name, ms, ln)
		fmt.Fprintf(stdout, "%-16s %s  (%d apps)\n", name, base, stores[name].Len())
	}

	var closeAnalysis func() error
	if *analysisOn {
		ln, err := listen(len(names))
		if err != nil {
			return fmt.Errorf("listen for analysis: %w", err)
		}
		as, closer, err := newAnalysisServer(serveCfg, analysisConfig{
			dataDir:       *dataDir,
			fsync:         fsyncPolicy,
			fsyncInterval: *fsyncEvery,
			snapshotEvery: *snapshotEvery,
			pageBudget:    *pageBudget,
			pageRetry:     *pageRetry,
		})
		if err != nil {
			return err
		}
		closeAnalysis = closer
		base := serve("analysis", as, ln)
		if *dataDir != "" {
			fmt.Fprintf(stdout, "%-16s %s  (ingest at %s, durable in %s)\n", "analysis", base, ingest.IngestPath, *dataDir)
		} else {
			fmt.Fprintf(stdout, "%-16s %s  (ingest at %s)\n", "analysis", base, ingest.IngestPath)
		}
	}

	blob, err := json.MarshalIndent(endpoints, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, string(blob))
	if *endpointsPath != "" {
		if err := os.WriteFile(*endpointsPath, blob, 0o644); err != nil {
			return fmt.Errorf("write endpoints: %w", err)
		}
	}
	fmt.Fprintf(stdout, "serving %d markets with %d listings; Ctrl-C to stop\n", len(stores), eco.NumListings())
	if len(held) > 0 {
		fmt.Fprintf(stdout, "holding back %d listings, releasing %d every %s\n", len(held), *releaseBatch, *releaseEvery)
	}

	// The release ticker drip-feeds the held-back listings back into their
	// stores, so crawls observe a growing catalog.
	done := make(chan struct{})
	var releaseWG sync.WaitGroup
	if len(held) > 0 {
		releaseWG.Add(1)
		go func() {
			defer releaseWG.Done()
			ticker := time.NewTicker(*releaseEvery)
			defer ticker.Stop()
			for len(held) > 0 {
				select {
				case <-done:
					return
				case <-ticker.C:
				}
				n := *releaseBatch
				if n > len(held) {
					n = len(held)
				}
				for _, h := range held[:n] {
					if err := h.store.Add(h.meta, h.apk); err != nil {
						fmt.Fprintf(os.Stderr, "marketsim: release %s: %v\n", h.meta.Package, err)
					}
				}
				held = held[n:]
			}
		}()
	}

	if stop == nil {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		stop = ch
	}
	<-stop
	close(done)
	releaseWG.Wait()

	// Graceful shutdown, in order: stop accepting and drain in-flight
	// requests under a deadline (http.Server.Shutdown), and only after every
	// handler has returned — no acks can still be in flight — flush the WAL
	// and write the parting snapshot (closeAnalysis). A drain that overruns
	// the deadline abandons the stragglers' connections but still loses no
	// acknowledged delta: an ack implies the WAL append already happened.
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	for _, srv := range servers {
		_ = srv.Shutdown(ctx)
	}
	wg.Wait()
	if closeAnalysis != nil {
		if err := closeAnalysis(); err != nil {
			fmt.Fprintf(os.Stderr, "marketsim: close analysis state: %v\n", err)
		}
	}

	for i, ep := range endpoints {
		if st := markets[i].ServingStats(); st.Requests > 0 {
			fmt.Fprint(stdout, report.ServeStats(ep.Name, st))
		}
	}
	return nil
}

// withholdSuffix rebuilds a store without the trailing fraction of its
// catalog and returns the withheld listings in release order.
func withholdSuffix(store *market.Store, fraction float64) (*market.Store, []heldListing, error) {
	pkgs := store.Packages()
	n := int(float64(len(pkgs)) * fraction)
	if n >= len(pkgs) && n > 0 {
		n = len(pkgs) - 1
	}
	if n <= 0 {
		return store, nil, nil
	}
	fresh := market.NewStore(store.Profile())
	var withheld []heldListing
	for i, pkg := range pkgs {
		l, ok := store.Get(pkg)
		if !ok {
			return nil, nil, fmt.Errorf("listing %s vanished", pkg)
		}
		if i < len(pkgs)-n {
			if err := fresh.Add(l.Meta, l.APK); err != nil {
				return nil, nil, err
			}
			continue
		}
		withheld = append(withheld, heldListing{store: fresh, meta: l.Meta, apk: l.APK})
	}
	return fresh, withheld, nil
}

// analysisConfig carries the durability knobs for the analysis endpoint; an
// empty dataDir keeps the endpoint in-memory only.
type analysisConfig struct {
	dataDir       string
	fsync         durable.FsyncPolicy
	fsyncInterval time.Duration
	snapshotEvery int
	pageBudget    int64
	pageRetry     int
}

// newAnalysisServer builds the delta-fed analysis endpoint: a market.Server
// with no catalog of its own, serving scan/aggregate over whatever the
// ingestor has published (an empty engine before the first delta) and
// accepting deltas on /api/ingest. With a data directory the ingestor is
// wrapped in a durable store — previously ingested state is recovered before
// the first request, every ack is backed by the WAL, and the returned closer
// persists a final snapshot on shutdown.
func newAnalysisServer(serveCfg market.ServeConfig, cfg analysisConfig) (*market.Server, func() error, error) {
	srv := market.NewServer(market.NewStore(market.Profile{Name: "analysis"}))
	attachEmpty := func() error {
		empty, err := analysis.BuildDatasetFromRecords(time.Now(), nil, nil, analysis.BuildOptions{})
		if err != nil {
			return fmt.Errorf("analysis server: %w", err)
		}
		empty.Enrich(analysis.DefaultEnrichOptions())
		srv.AttachScan(empty.QuerySource())
		return nil
	}
	ingOpts := ingest.Options{
		Enrich:    analysis.DefaultEnrichOptions(),
		CrawlTime: time.Now(),
		Publish:   func(d *analysis.Dataset) { srv.SwapSource(d.QuerySource()) },
	}

	if cfg.dataDir == "" {
		if err := attachEmpty(); err != nil {
			return nil, nil, err
		}
		ing := ingest.New(ingOpts)
		srv.AttachPost(ingest.IngestPath, ingest.Handler(ing))
		srv.ConfigureServing(serveCfg)
		return srv, nil, nil
	}

	store, err := durable.Open(durable.Options{
		Dir:           cfg.dataDir,
		Fsync:         cfg.fsync,
		FsyncInterval: cfg.fsyncInterval,
		SnapshotEvery: cfg.snapshotEvery,
		PageBudget:    cfg.pageBudget,
		PageRetries:   cfg.pageRetry,
		Ingest:        ingOpts,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("open durable analysis state: %w", err)
	}
	// Recovery does not publish; attach whatever state survived (or the empty
	// engine on a fresh directory) before the first request can race it.
	if ds := store.Dataset(); ds != nil {
		srv.AttachScan(ds.QuerySource())
	} else if err := attachEmpty(); err != nil {
		store.Close()
		return nil, nil, err
	}
	srv.AttachPost(ingest.IngestPath, ingest.Handler(store))
	srv.ConfigureServing(serveCfg)
	store.Metrics().Register(srv.MetricsRegistry())
	closer := func() error {
		var serr error
		if store.Dataset() != nil {
			// A parting snapshot makes the next cold start O(snapshot load)
			// instead of O(full WAL replay). Best effort: the WAL already
			// holds everything acknowledged.
			serr = store.WriteSnapshot()
		}
		if cerr := store.Close(); cerr != nil {
			return cerr
		}
		return serr
	}
	return srv, closer, nil
}
