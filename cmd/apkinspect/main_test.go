package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"marketscope/internal/apk"
	"marketscope/internal/avscan"
	"marketscope/internal/dex"
	"marketscope/internal/manifest"
	"marketscope/internal/signing"
)

// writeTestAPK builds a signed APK on disk: a benign app embedding Umeng, or
// a malicious one carrying the kuguo payload.
func writeTestAPK(t *testing.T, malicious bool) string {
	t.Helper()
	code := &dex.File{Classes: []dex.Class{
		{Name: "com.inspect.app.Main", Methods: []dex.Method{
			{Name: "onCreate", APICalls: []string{"android.app.Activity.onCreate", "java.net.URL.openConnection"}},
		}},
		{Name: "com.umeng.analytics.Agent", Methods: []dex.Method{
			{Name: "report", APICalls: []string{
				"android.net.ConnectivityManager.getActiveNetworkInfo",
				"java.net.URL.openConnection",
				"android.content.Context.getPackageName",
				"lib.com.umeng.Api.call0",
			}},
		}},
	}}
	if malicious {
		fam, _ := avscan.FamilyByName("kuguo")
		code.AddClass(dex.Class{Name: fam.PayloadPrefix + ".Payload", Methods: []dex.Method{
			{Name: "activate", APICalls: append([]string{fam.MarkerAPI}, fam.SignatureAPIs...)},
		}})
	}
	pkg := &apk.APK{
		Manifest: &manifest.Manifest{
			Package: "com.inspect.app", VersionCode: 120, VersionName: "1.2.0",
			MinSDK: 9, TargetSDK: 19, AppLabel: "Inspect Me",
			Permissions: []string{
				"android.permission.INTERNET",
				"android.permission.READ_PHONE_STATE", // requested but unused
			},
		},
		Dex:     code,
		Channel: map[string]string{"kgchannel": "test"},
	}
	data, err := apk.Build(pkg, signing.NewDeveloper("Inspect Dev", 42))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "inspect.apk")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestInspectBenignAPK(t *testing.T) {
	path := writeTestAPK(t, false)
	var buf bytes.Buffer
	if err := run([]string{path}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"com.inspect.app", "1.2.0", "Umeng", "unused dangerous: android.permission.READ_PHONE_STATE",
		"clean", "kgchannel=test",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestInspectMaliciousAPK(t *testing.T) {
	path := writeTestAPK(t, true)
	var buf bytes.Buffer
	if err := run([]string{path}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "MALWARE") || !strings.Contains(out, "kuguo") {
		t.Errorf("malicious APK not flagged:\n%s", out)
	}
}

func TestInspectValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{}, &buf); err == nil {
		t.Error("missing path accepted")
	}
	if err := run([]string{"/does/not/exist.apk"}, &buf); err == nil {
		t.Error("missing file accepted")
	}
	garbage := filepath.Join(t.TempDir(), "garbage.apk")
	if err := os.WriteFile(garbage, []byte("not an apk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{garbage}, &buf); err == nil {
		t.Error("garbage file accepted")
	}
}
