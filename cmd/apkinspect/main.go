// Command apkinspect parses a single APK produced by the simulator (for
// example one saved under a crawl snapshot's apks/ directory) and prints the
// analysis-relevant view of it: manifest identity, signing developer,
// requested vs used permissions, embedded third-party libraries and the
// simulated VirusTotal verdict.
//
// Usage:
//
//	apkinspect path/to/app.apk [more.apk ...]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"marketscope/internal/apk"
	"marketscope/internal/avscan"
	"marketscope/internal/libdetect"
	"marketscope/internal/manifest"
	"marketscope/internal/permissions"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "apkinspect:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("apkinspect", flag.ContinueOnError)
	scannerSeed := fs.Uint64("scanner-seed", 1, "seed for the simulated AV engine pool")
	avThreshold := fs.Int("av-threshold", 10, "AV-rank threshold for calling a sample malware")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		return fmt.Errorf("usage: apkinspect [flags] <apk> [apk ...]")
	}

	detector := libdetect.NewDetector(nil, nil)
	analyzer := permissions.NewAnalyzer(nil)
	scanner := avscan.NewScanner(*scannerSeed, avscan.DefaultEngineCount)

	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("read %s: %w", path, err)
		}
		parsed, err := apk.Parse(data)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		if err := inspect(out, path, parsed, detector, analyzer, scanner, *avThreshold); err != nil {
			return err
		}
	}
	return nil
}

func inspect(out io.Writer, path string, parsed *apk.Parsed, detector *libdetect.Detector,
	analyzer *permissions.Analyzer, scanner *avscan.Scanner, avThreshold int) error {
	m := parsed.Manifest
	fmt.Fprintf(out, "== %s ==\n", path)
	fmt.Fprintf(out, "package:        %s\n", m.Package)
	fmt.Fprintf(out, "version:        %s (code %d)\n", m.VersionName, m.VersionCode)
	fmt.Fprintf(out, "label:          %s\n", m.AppLabel)
	fmt.Fprintf(out, "min/target SDK: %d / %d (Android %s)\n", m.MinSDK, m.TargetSDK,
		manifest.AndroidVersionForAPI(m.MinSDK))
	fmt.Fprintf(out, "developer cert: %s\n", parsed.Developer().Short())
	fmt.Fprintf(out, "archive:        %d bytes, md5 %s\n", parsed.Size, parsed.MD5)
	if len(parsed.Channel) > 0 {
		var channels []string
		for name, value := range parsed.Channel {
			channels = append(channels, name+"="+value)
		}
		fmt.Fprintf(out, "channel files:  %s\n", strings.Join(channels, ", "))
	}
	fmt.Fprintf(out, "code:           %d classes, %d methods, %d distinct framework APIs\n",
		parsed.Dex.NumClasses(), parsed.Dex.NumMethods(), len(parsed.Dex.DistinctAPICalls()))

	usage := analyzer.Analyze(m, parsed.Dex)
	fmt.Fprintf(out, "permissions:    %d requested, %d used, %d unused", len(m.Permissions),
		len(usage.Used), len(usage.Unused))
	if dangerous := usage.UnusedDangerous(); len(dangerous) > 0 {
		fmt.Fprintf(out, " (unused dangerous: %s)", strings.Join(dangerous, ", "))
	}
	fmt.Fprintln(out)

	dets := detector.Detect(parsed.Dex, m.Package)
	if len(dets) == 0 {
		fmt.Fprintln(out, "libraries:      none detected")
	} else {
		fmt.Fprintf(out, "libraries:      %d detected\n", len(dets))
		for _, det := range dets {
			marker := " "
			if det.IsAd() {
				marker = "*"
			}
			fmt.Fprintf(out, "  %s %-34s %-18s %d classes\n", marker, det.Library.Name, det.Library.Category, det.Classes)
		}
	}

	report := scanner.Scan(parsed.SHA256, parsed.Dex)
	verdict := "clean"
	if report.Flagged(avThreshold) {
		verdict = "MALWARE"
		if report.Family != "" {
			verdict += " (family " + report.Family + ")"
		}
	}
	fmt.Fprintf(out, "AV scan:        %d/%d engines flagged -> %s\n\n", report.Positives, report.Total, verdict)
	return nil
}
