// Command study runs the full marketscope reproduction end to end: it
// generates the synthetic ecosystem, publishes it to the 17 simulated
// markets, crawls them, runs every analysis and prints each of the paper's
// tables and figures.
//
// Usage:
//
//	study [-apps N] [-developers N] [-seed S] [-mode in-process|http]
//	      [-workers N] [-experiment ID] [-out FILE]
//
// With -experiment, only the named artifact (e.g. T4 or F10) is printed; the
// default prints the complete report.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"marketscope/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "study:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("study", flag.ContinueOnError)
	apps := fs.Int("apps", 1200, "number of distinct apps to generate")
	developers := fs.Int("developers", 420, "number of developer identities")
	seed := fs.Uint64("seed", 20170815, "generation seed")
	mode := fs.String("mode", string(core.ModeInProcess), "crawl mode: in-process or http")
	experiment := fs.String("experiment", "", "render a single experiment (e.g. T4, F10); empty renders all")
	outPath := fs.String("out", "", "write the report to this file instead of stdout")
	malwareRate := fs.Float64("malware-rate", 0.14, "fraction of generated apps carrying a malware payload")
	workers := fs.Int("workers", 0, "parse/enrichment/clone-detection/analysis worker count (0 = one per CPU, 1 = serial)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := core.DefaultConfig()
	cfg.Synth.NumApps = *apps
	cfg.Synth.NumDevelopers = *developers
	cfg.Synth.Seed = *seed
	cfg.Synth.MalwareRate = *malwareRate
	cfg.Mode = core.Mode(*mode)
	cfg.Enrich.Workers = *workers
	cfg.Clone.Workers = *workers
	cfg.Analyses.Workers = *workers

	results, err := core.Run(context.Background(), cfg)
	if err != nil {
		return err
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return fmt.Errorf("create %s: %w", *outPath, err)
		}
		defer f.Close()
		out = f
	}

	if *experiment != "" {
		rendered, err := results.Render(strings.ToUpper(*experiment))
		if err != nil {
			return err
		}
		_, err = fmt.Fprintln(out, rendered)
		return err
	}
	return results.WriteReport(out)
}
