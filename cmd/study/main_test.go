package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-apps", "60", "-developers", "25", "-seed", "7", "-experiment", "t4",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table 4") || !strings.Contains(out, "Google Play") {
		t.Errorf("unexpected output:\n%s", out)
	}
	if strings.Contains(out, "Figure 1") {
		t.Error("single-experiment run printed other artifacts")
	}
}

func TestRunFullReportToFile(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "report.txt")
	var buf bytes.Buffer
	err := run([]string{
		"-apps", "60", "-developers", "25", "-seed", "7", "-out", outPath,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	report := string(data)
	for _, want := range []string{"[T1]", "[T6]", "[F13]", "Table 3", "Figure 12"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if buf.Len() != 0 {
		t.Error("stdout should be empty when -out is used")
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-apps", "60", "-developers", "25", "-experiment", "T99"}, &buf)
	if err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-apps", "2", "-developers", "25"}, &buf); err == nil {
		t.Error("invalid synth config accepted")
	}
}

// TestRunWorkersFlagDeterministic runs the same small study serially
// (-workers 1, the oracle path for parsing, enrichment AND clone detection)
// and on the worker pool (-workers 4); the pipeline is deterministic, so the
// rendered artifacts must be byte-identical. T4 covers the enrichment path,
// T3 and F10 cover the indexed clone detector the -workers flag also drives.
func TestRunWorkersFlagDeterministic(t *testing.T) {
	for _, experiment := range []string{"t4", "t3", "f10"} {
		var serial, parallel bytes.Buffer
		if err := run([]string{"-apps", "60", "-developers", "25", "-seed", "7", "-workers", "1", "-experiment", experiment}, &serial); err != nil {
			t.Fatalf("%s: serial run: %v", experiment, err)
		}
		if err := run([]string{"-apps", "60", "-developers", "25", "-seed", "7", "-workers", "4", "-experiment", experiment}, &parallel); err != nil {
			t.Fatalf("%s: parallel run: %v", experiment, err)
		}
		if serial.String() != parallel.String() {
			t.Errorf("%s: worker count changed the artifact:\nserial:\n%s\nparallel:\n%s", experiment, serial.String(), parallel.String())
		}
	}
}
