package main

import (
	"bytes"
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"

	"marketscope/internal/query"
)

// acceptanceQuery is the canonical acceptance query: two filters, a two-key
// sort and a limit. The same document is exercised against the Go API and
// the HTTP endpoint in internal/market's scan tests.
const acceptanceQuery = `{
	"fields":  ["package", "market", "downloads", "rating"],
	"filters": [{"field": "rating", "op": ">=", "value": 3.0},
	            {"field": "downloads", "op": "is_null", "value": false}],
	"sort":    [{"field": "downloads", "desc": true}, {"field": "package"}],
	"limit":   10
}`

func TestScanCLIFieldListing(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fields"}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("run -fields: %v", err)
	}
	listing := out.String()
	for _, want := range []string{"market", "package", "av_positives", "metadata", "apk", "enrichment"} {
		if !strings.Contains(listing, want) {
			t.Errorf("field listing missing %q", want)
		}
	}
}

// TestScanCLIMatchesGoAPI runs the acceptance query through the CLI's JSON
// output (on the parallel pipeline) and through the Go API over an
// identically-configured dataset enriched serially; the generator is
// deterministic per seed and the pipeline is deterministic per worker count,
// so the rows must be identical.
func TestScanCLIMatchesGoAPI(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-apps", "120", "-developers", "40", "-seed", "7", "-format", "json"},
		strings.NewReader(acceptanceQuery), &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var cli query.Result
	if err := json.Unmarshal(out.Bytes(), &cli); err != nil {
		t.Fatalf("decode CLI output: %v", err)
	}

	ds, err := buildDataset("", 120, 40, 7, true, 1)
	if err != nil {
		t.Fatalf("build dataset: %v", err)
	}
	q, err := query.ParseQuery(strings.NewReader(acceptanceQuery))
	if err != nil {
		t.Fatalf("parse query: %v", err)
	}
	direct, err := ds.QuerySource().Scan(q)
	if err != nil {
		t.Fatalf("direct scan: %v", err)
	}

	if cli.Meta.TotalMatched != direct.Meta.TotalMatched || cli.Meta.Returned != direct.Meta.Returned {
		t.Fatalf("meta diverges: cli %+v, direct %+v", cli.Meta, direct.Meta)
	}
	cliRows, _ := json.Marshal(cli.Rows)
	directRows, _ := json.Marshal(direct.Rows)
	if !bytes.Equal(cliRows, directRows) {
		t.Fatalf("rows diverge:\ncli:    %s\ndirect: %s", cliRows, directRows)
	}
}

func TestScanCLITableOutput(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-apps", "60", "-developers", "20"},
		strings.NewReader(`{"fields": ["package", "market"], "limit": 3}`), &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "listings matched") {
		t.Errorf("table output missing meta line:\n%s", out.String())
	}
	if strings.Contains(out.String(), "plan:") {
		t.Errorf("plan line printed without -explain:\n%s", out.String())
	}
}

// TestScanCLIExplain checks -explain appends the planner report, with an
// indexed filter actually naming its index.
func TestScanCLIExplain(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-apps", "60", "-developers", "20", "-no-enrich", "-explain"},
		strings.NewReader(`{"fields": ["package"], "filters": [{"field": "market", "op": "==", "value": "Google Play"}], "limit": 3}`), &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "plan: index=bitmap(market)") {
		t.Errorf("-explain output missing indexed plan line:\n%s", got)
	}
	if !strings.Contains(got, "candidates=") || !strings.Contains(got, "residual_scanned=") {
		t.Errorf("-explain output missing counters:\n%s", got)
	}
}

func TestScanCLIErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-format", "yaml"}, strings.NewReader("{}"), &out); err == nil {
		t.Error("bad format accepted")
	}
	if err := run([]string{"-apps", "40", "-developers", "12", "-no-enrich"},
		strings.NewReader(`{"fields": ["nope"]}`), &out); err == nil {
		t.Error("unknown field accepted")
	}
	if err := run([]string{"-apps", "40", "-developers", "12", "-no-enrich"},
		strings.NewReader(`not json`), &out); err == nil {
		t.Error("malformed query accepted")
	}
}

// TestScanCLINoEnrichNulls checks enrichment fields stay null (and filter as
// null) without the detector pass.
func TestScanCLINoEnrichNulls(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-apps", "40", "-developers", "12", "-no-enrich", "-format", "json"},
		strings.NewReader(`{"fields": ["package", "av_positives"],
			"filters": [{"field": "av_positives", "op": "is_null"}], "limit": 5}`), &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var res query.Result
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if res.Meta.TotalMatched != res.Meta.Scanned {
		t.Errorf("without enrichment every row should have null av_positives: %+v", res.Meta)
	}
	for _, row := range res.Rows {
		if row[1] != nil {
			t.Errorf("av_positives = %v, want null", row[1])
		}
	}
}

// TestScanCLIListingMetaDeterministic runs a query over the listing-metadata
// fields whose draws once rode on map-iteration order — market_category,
// developer_name, has_iap — through the CLI and the Go API over two
// independently generated corpora of the same seed. Every field must match:
// the generator derives each listing's metadata stream purely from
// (seed, package, market), not from generation order.
func TestScanCLIListingMetaDeterministic(t *testing.T) {
	const metaQuery = `{
		"fields":  ["package", "market", "market_category", "developer_name", "has_iap"],
		"sort":    [{"field": "package"}, {"field": "market"}],
		"limit":   50
	}`
	var out bytes.Buffer
	err := run([]string{"-apps", "120", "-developers", "40", "-seed", "7", "-no-enrich", "-format", "json"},
		strings.NewReader(metaQuery), &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var cli query.Result
	if err := json.Unmarshal(out.Bytes(), &cli); err != nil {
		t.Fatalf("decode CLI output: %v", err)
	}

	ds, err := buildDataset("", 120, 40, 7, false, 1)
	if err != nil {
		t.Fatalf("build dataset: %v", err)
	}
	q, err := query.ParseQuery(strings.NewReader(metaQuery))
	if err != nil {
		t.Fatalf("parse query: %v", err)
	}
	direct, err := ds.QuerySource().Scan(q)
	if err != nil {
		t.Fatalf("direct scan: %v", err)
	}
	cliRows, _ := json.Marshal(cli.Rows)
	directRows, _ := json.Marshal(direct.Rows)
	if !bytes.Equal(cliRows, directRows) {
		t.Fatalf("listing metadata diverges across generates:\ncli:    %s\ndirect: %s", cliRows, directRows)
	}
}

// TestScanCLIAggregateMatchesGoAPI runs a grouped aggregation through the
// CLI flags and through the Go API over an identically-configured dataset;
// the rows must be identical (modulo JSON number widening).
func TestScanCLIAggregateMatchesGoAPI(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-apps", "120", "-developers", "40", "-seed", "7", "-format", "json",
		"-group-by", "market", "-agg", "count,mean(rating),min(package),share"},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var cli query.Result
	if err := json.Unmarshal(out.Bytes(), &cli); err != nil {
		t.Fatalf("decode CLI output: %v", err)
	}

	ds, err := buildDataset("", 120, 40, 7, true, 1)
	if err != nil {
		t.Fatalf("build dataset: %v", err)
	}
	direct, err := ds.Aggregate(query.Aggregate{
		GroupBy: []string{"market"},
		Aggregates: []query.AggSpec{
			{Op: query.AggCount},
			{Op: query.AggMean, Field: "rating"},
			{Op: query.AggMin, Field: "package"},
			{Op: query.AggShare},
		},
	})
	if err != nil {
		t.Fatalf("direct aggregate: %v", err)
	}
	if cli.Meta.TotalMatched != direct.Meta.TotalMatched || cli.Meta.Returned != direct.Meta.Returned {
		t.Fatalf("meta diverges: cli %+v, direct %+v", cli.Meta, direct.Meta)
	}
	var directWidened [][]any
	dj, _ := json.Marshal(direct.Rows)
	_ = json.Unmarshal(dj, &directWidened)
	cliRows, _ := json.Marshal(cli.Rows)
	directRows, _ := json.Marshal(directWidened)
	if !bytes.Equal(cliRows, directRows) {
		t.Fatalf("rows diverge:\ncli:    %s\ndirect: %s", cliRows, directRows)
	}
}

// TestScanCLIAggregateTable checks the table renderer and that a -query
// aggregate document composes with the flags.
func TestScanCLIAggregateTable(t *testing.T) {
	doc := t.TempDir() + "/agg.json"
	if err := os.WriteFile(doc, []byte(`{
		"aggregates": [{"op": "count"}],
		"filters": [{"field": "apk_parsed", "op": "==", "value": true}],
		"sort": [{"field": "count", "desc": true}],
		"limit": 3
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-apps", "60", "-developers", "20", "-no-enrich",
		"-group-by", "market", "-query", doc}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "Aggregate results") || !strings.Contains(got, "groups from") {
		t.Errorf("aggregate table output missing meta line:\n%s", got)
	}
	if n := strings.Count(got, "\n"); n > 10 {
		t.Errorf("limit 3 not applied, %d lines:\n%s", n, got)
	}
}

func TestParseAggSpecs(t *testing.T) {
	specs, err := parseAggSpecs(" count , mean(library_count), topk(av_family,3) ,share")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := []query.AggSpec{
		{Op: query.AggCount},
		{Op: query.AggMean, Field: "library_count"},
		{Op: query.AggTopK, Field: "av_family", K: 3},
		{Op: query.AggShare},
	}
	if len(specs) != len(want) {
		t.Fatalf("specs = %+v", specs)
	}
	for i := range want {
		if !reflect.DeepEqual(specs[i], want[i]) {
			t.Errorf("spec %d = %+v, want %+v", i, specs[i], want[i])
		}
	}
	for _, bad := range []string{"mean(library_count", "topk(av_family,x)"} {
		if _, err := parseAggSpecs(bad); err == nil {
			t.Errorf("parseAggSpecs(%q) accepted", bad)
		}
	}
}
