// Command scan executes ad-hoc queries against a crawl dataset through the
// internal/query engine: the caller-defined fields/filters/sort/limit model
// that also backs the markets' POST /api/scan endpoint.
//
// Usage:
//
//	scan -fields
//	scan [-snapshot DIR | -apps N] [-workers N] [-query FILE] [-format table|json] [-explain]
//	scan -group-by FIELDS [-agg SPECS] [-query FILE] ...
//
// The dataset is either a snapshot saved by the crawler command (-snapshot)
// or a freshly generated synthetic corpus (-apps/-developers/-seed, the
// self-contained demo path). The query is a JSON document read from -query
// (or stdin when omitted or "-"):
//
//	{
//	  "fields":  ["package", "market", "av_positives"],
//	  "filters": [{"field": "market_chinese", "op": "==", "value": true},
//	              {"field": "av_positives", "op": ">=", "value": 10}],
//	  "sort":    [{"field": "av_positives", "desc": true}, {"field": "package"}],
//	  "limit":   25
//	}
//
// -group-by (or -agg) switches to grouped aggregation through the same
// engine the markets' POST /api/aggregate serves: -group-by names the
// comma-separated grouping fields and -agg the aggregate cells as
// op / op(field) / topk(field,k) specs, e.g.
//
//	scan -group-by market -agg 'count,mean(library_count),topk(av_family,3)'
//
// In aggregation mode -query (a JSON aggregate document: group_by,
// aggregates with optional per-cell "where" filters, filters, sort, limit)
// is read only when given explicitly and supplies whatever the flags do not.
//
// -fields lists every scannable field with its category, kind, null and
// index behaviour; the registry is static, so no corpus is loaded or
// generated. -format json emits the raw query.Result for piping; the
// default table output matches the study's report style. -explain appends
// the planner's execution report (index used, candidate rows, residual rows
// evaluated) to the table output; JSON output always carries it in
// meta.explain.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"marketscope/internal/analysis"
	"marketscope/internal/crawler"
	"marketscope/internal/query"
	"marketscope/internal/report"
	"marketscope/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scan:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("scan", flag.ContinueOnError)
	snapshotDir := fs.String("snapshot", "", "crawl snapshot directory saved by the crawler command")
	apps := fs.Int("apps", 220, "apps to generate when no snapshot is given")
	developers := fs.Int("developers", 90, "developer identities to generate")
	seed := fs.Uint64("seed", 20170815, "generation seed")
	queryPath := fs.String("query", "", "JSON query file ('-' or empty = stdin)")
	format := fs.String("format", "table", "output format: table or json")
	listFields := fs.Bool("fields", false, "list the scannable fields and exit")
	groupBy := fs.String("group-by", "", "comma-separated grouping fields; switches to aggregation mode")
	aggSpecs := fs.String("agg", "", "comma-separated aggregates: op, op(field) or topk(field,k); default count")
	explain := fs.Bool("explain", false, "print the planner's execution report after the table")
	noEnrich := fs.Bool("no-enrich", false, "skip the detector pass (enrichment fields stay null)")
	workers := fs.Int("workers", 0, "parse/enrichment worker count (0 = one per CPU, 1 = serial)")
	timeout := fs.Duration("timeout", 0, "abort the query after this long (0 = no deadline)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *format != "table" && *format != "json" {
		return fmt.Errorf("unknown format %q (want table or json)", *format)
	}

	if *listFields {
		// The field registry is static metadata — it never depends on the
		// data, so listing it needs no corpus, parse or detector pass.
		empty, err := analysis.BuildDataset(crawler.NewSnapshot(time.Time{}))
		if err != nil {
			return err
		}
		fields := empty.QuerySource().Fields()
		if *format == "json" {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			return enc.Encode(struct {
				Fields any `json:"fields"`
			}{fields})
		}
		_, err = fmt.Fprint(out, report.ScanFields(fields))
		return err
	}

	ds, err := buildDataset(*snapshotDir, *apps, *developers, *seed, !*noEnrich, *workers)
	if err != nil {
		return err
	}
	src := ds.QuerySource()

	openQuery := func() (io.Reader, func(), error) {
		if *queryPath == "" || *queryPath == "-" {
			return in, func() {}, nil
		}
		f, err := os.Open(*queryPath)
		if err != nil {
			return nil, nil, fmt.Errorf("open query: %w", err)
		}
		return f, func() { f.Close() }, nil
	}

	var res *query.Result
	aggMode := *groupBy != "" || *aggSpecs != ""
	if aggMode {
		agg, ok := src.(query.AggregateSource)
		if !ok {
			return fmt.Errorf("query source %T does not support aggregation", src)
		}
		var req query.Aggregate
		if *queryPath != "" {
			// The document supplies whatever the flags do not (filters,
			// per-cell where clauses, sort, limit).
			queryIn, closeQuery, err := openQuery()
			if err != nil {
				return err
			}
			req, err = query.ParseAggregate(queryIn)
			closeQuery()
			if err != nil {
				return err
			}
		}
		if *groupBy != "" {
			req.GroupBy = splitFields(*groupBy)
		}
		if *aggSpecs != "" {
			if req.Aggregates, err = parseAggSpecs(*aggSpecs); err != nil {
				return err
			}
		}
		if len(req.Aggregates) == 0 {
			req.Aggregates = []query.AggSpec{{Op: query.AggCount}}
		}
		if res, err = aggregateContext(ctx, agg, req); err != nil {
			return err
		}
	} else {
		queryIn, closeQuery, err := openQuery()
		if err != nil {
			return err
		}
		q, err := query.ParseQuery(queryIn)
		closeQuery()
		if err != nil {
			return err
		}
		if res, err = scanContext(ctx, src, q); err != nil {
			return err
		}
	}

	if *format == "json" {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	render, title := report.ScanTable, "Scan results"
	if aggMode {
		render, title = report.AggregateTable, "Aggregate results"
	}
	if _, err := fmt.Fprint(out, render(title, res)); err != nil {
		return err
	}
	if *explain {
		_, err = fmt.Fprint(out, report.ScanExplain(res.Meta))
	}
	return err
}

// scanContext runs the scan under ctx when the source supports cancellation
// (the dataset engine does); otherwise the deadline is advisory only.
func scanContext(ctx context.Context, src query.Source, q query.Query) (*query.Result, error) {
	if cs, ok := src.(query.ContextSource); ok {
		return cs.ScanContext(ctx, q)
	}
	return src.Scan(q)
}

func aggregateContext(ctx context.Context, src query.AggregateSource, a query.Aggregate) (*query.Result, error) {
	if cs, ok := src.(query.ContextAggregateSource); ok {
		return cs.AggregateContext(ctx, a)
	}
	return src.Aggregate(a)
}

// splitFields splits a comma-separated field list, trimming blanks.
func splitFields(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// parseAggSpecs parses the -agg flag: comma-separated op, op(field) or
// topk(field,k) items (commas inside parentheses do not split).
func parseAggSpecs(s string) ([]query.AggSpec, error) {
	var items []string
	depth, start := 0, 0
	for i, c := range s {
		switch c {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				items = append(items, s[start:i])
				start = i + 1
			}
		}
	}
	items = append(items, s[start:])

	var specs []query.AggSpec
	for _, item := range items {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		op, arg := item, ""
		if i := strings.IndexByte(item, '('); i >= 0 {
			if !strings.HasSuffix(item, ")") {
				return nil, fmt.Errorf("bad aggregate %q (want op, op(field) or topk(field,k))", item)
			}
			op, arg = item[:i], item[i+1:len(item)-1]
		}
		spec := query.AggSpec{Op: query.AggOp(strings.TrimSpace(op))}
		if arg != "" {
			field := arg
			if j := strings.LastIndexByte(arg, ','); j >= 0 && spec.Op == query.AggTopK {
				k, err := strconv.Atoi(strings.TrimSpace(arg[j+1:]))
				if err != nil {
					return nil, fmt.Errorf("bad topk count in %q", item)
				}
				spec.K, field = k, arg[:j]
			}
			spec.Field = strings.TrimSpace(field)
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// buildDataset loads a saved snapshot or generates a synthetic corpus, then
// parses (and optionally enriches) it on a worker pool of the given size.
func buildDataset(snapshotDir string, apps, developers int, seed uint64, enrich bool, workers int) (*analysis.Dataset, error) {
	var snap *crawler.Snapshot
	if snapshotDir != "" {
		loaded, err := crawler.Load(snapshotDir)
		if err != nil {
			return nil, fmt.Errorf("load snapshot: %w", err)
		}
		snap = loaded
	} else {
		cfg := synth.SmallConfig()
		cfg.NumApps = apps
		cfg.NumDevelopers = developers
		cfg.Seed = seed
		eco, err := synth.Generate(cfg)
		if err != nil {
			return nil, fmt.Errorf("generate corpus: %w", err)
		}
		stores, err := eco.Populate()
		if err != nil {
			return nil, fmt.Errorf("populate markets: %w", err)
		}
		snap, err = crawler.SnapshotFromStores(stores, true, cfg.CrawlDate)
		if err != nil {
			return nil, fmt.Errorf("snapshot markets: %w", err)
		}
	}
	ds, err := analysis.BuildDatasetWith(snap, analysis.BuildOptions{Workers: workers})
	if err != nil {
		return nil, err
	}
	if enrich {
		opts := analysis.DefaultEnrichOptions()
		opts.Workers = workers
		ds.Enrich(opts)
	}
	return ds, nil
}
