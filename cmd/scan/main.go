// Command scan executes ad-hoc queries against a crawl dataset through the
// internal/query engine: the caller-defined fields/filters/sort/limit model
// that also backs the markets' POST /api/scan endpoint.
//
// Usage:
//
//	scan -fields
//	scan [-snapshot DIR | -apps N] [-workers N] [-query FILE] [-format table|json] [-explain]
//
// The dataset is either a snapshot saved by the crawler command (-snapshot)
// or a freshly generated synthetic corpus (-apps/-developers/-seed, the
// self-contained demo path). The query is a JSON document read from -query
// (or stdin when omitted or "-"):
//
//	{
//	  "fields":  ["package", "market", "av_positives"],
//	  "filters": [{"field": "market_chinese", "op": "==", "value": true},
//	              {"field": "av_positives", "op": ">=", "value": 10}],
//	  "sort":    [{"field": "av_positives", "desc": true}, {"field": "package"}],
//	  "limit":   25
//	}
//
// -fields lists every scannable field with its category, kind, null and
// index behaviour; the registry is static, so no corpus is loaded or
// generated. -format json emits the raw query.Result for piping; the
// default table output matches the study's report style. -explain appends
// the planner's execution report (index used, candidate rows, residual rows
// evaluated) to the table output; JSON output always carries it in
// meta.explain.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"marketscope/internal/analysis"
	"marketscope/internal/crawler"
	"marketscope/internal/query"
	"marketscope/internal/report"
	"marketscope/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scan:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("scan", flag.ContinueOnError)
	snapshotDir := fs.String("snapshot", "", "crawl snapshot directory saved by the crawler command")
	apps := fs.Int("apps", 220, "apps to generate when no snapshot is given")
	developers := fs.Int("developers", 90, "developer identities to generate")
	seed := fs.Uint64("seed", 20170815, "generation seed")
	queryPath := fs.String("query", "", "JSON query file ('-' or empty = stdin)")
	format := fs.String("format", "table", "output format: table or json")
	listFields := fs.Bool("fields", false, "list the scannable fields and exit")
	explain := fs.Bool("explain", false, "print the planner's execution report after the table")
	noEnrich := fs.Bool("no-enrich", false, "skip the detector pass (enrichment fields stay null)")
	workers := fs.Int("workers", 0, "parse/enrichment worker count (0 = one per CPU, 1 = serial)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "table" && *format != "json" {
		return fmt.Errorf("unknown format %q (want table or json)", *format)
	}

	if *listFields {
		// The field registry is static metadata — it never depends on the
		// data, so listing it needs no corpus, parse or detector pass.
		empty, err := analysis.BuildDataset(crawler.NewSnapshot(time.Time{}))
		if err != nil {
			return err
		}
		fields := empty.QuerySource().Fields()
		if *format == "json" {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			return enc.Encode(struct {
				Fields any `json:"fields"`
			}{fields})
		}
		_, err = fmt.Fprint(out, report.ScanFields(fields))
		return err
	}

	ds, err := buildDataset(*snapshotDir, *apps, *developers, *seed, !*noEnrich, *workers)
	if err != nil {
		return err
	}
	src := ds.QuerySource()

	queryIn := in
	if *queryPath != "" && *queryPath != "-" {
		f, err := os.Open(*queryPath)
		if err != nil {
			return fmt.Errorf("open query: %w", err)
		}
		defer f.Close()
		queryIn = f
	}
	q, err := query.ParseQuery(queryIn)
	if err != nil {
		return err
	}
	res, err := src.Scan(q)
	if err != nil {
		return err
	}
	if *format == "json" {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	if _, err := fmt.Fprint(out, report.ScanTable("Scan results", res)); err != nil {
		return err
	}
	if *explain {
		_, err = fmt.Fprint(out, report.ScanExplain(res.Meta))
	}
	return err
}

// buildDataset loads a saved snapshot or generates a synthetic corpus, then
// parses (and optionally enriches) it on a worker pool of the given size.
func buildDataset(snapshotDir string, apps, developers int, seed uint64, enrich bool, workers int) (*analysis.Dataset, error) {
	var snap *crawler.Snapshot
	if snapshotDir != "" {
		loaded, err := crawler.Load(snapshotDir)
		if err != nil {
			return nil, fmt.Errorf("load snapshot: %w", err)
		}
		snap = loaded
	} else {
		cfg := synth.SmallConfig()
		cfg.NumApps = apps
		cfg.NumDevelopers = developers
		cfg.Seed = seed
		eco, err := synth.Generate(cfg)
		if err != nil {
			return nil, fmt.Errorf("generate corpus: %w", err)
		}
		stores, err := eco.Populate()
		if err != nil {
			return nil, fmt.Errorf("populate markets: %w", err)
		}
		snap, err = crawler.SnapshotFromStores(stores, true, cfg.CrawlDate)
		if err != nil {
			return nil, fmt.Errorf("snapshot markets: %w", err)
		}
	}
	ds, err := analysis.BuildDatasetWith(snap, analysis.BuildOptions{Workers: workers})
	if err != nil {
		return nil, err
	}
	if enrich {
		opts := analysis.DefaultEnrichOptions()
		opts.Workers = workers
		ds.Enrich(opts)
	}
	return ds, nil
}
