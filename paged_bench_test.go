// BenchmarkPagedServe measures serving a snapshot-backed corpus without
// materializing it: a durable store recovers lazily over the scaled corpus
// under a resident-byte budget a quarter of the materialized column bytes,
// and the bench records page-in (first touch, disk + decode) vs warm-hit
// latency and the steady-state residency of a query mix cycling through the
// budget. Before any timing the paged engine is asserted byte-identical to
// the eagerly materialized store on the scale bench shapes plus a
// row-order-sensitive dump (the equivalence-then-measure pattern of the other
// benches), and the PAGEDSTAT line feeds the CI bench artifact
// BENCH_paging.json.
package marketscope_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"marketscope/internal/analysis"
	"marketscope/internal/durable"
	"marketscope/internal/ingest"
	"marketscope/internal/query"
)

func BenchmarkPagedServe(b *testing.B) {
	rows := scaledRowsTarget()
	records := coldstartRecords(b, rows)
	crawlTime := records[len(records)-1].UpdateDate

	// Seed one durable data dir: the corpus as a single WAL'd delta plus a
	// paged column-store snapshot for the lazy opens to serve from.
	dataDir := filepath.Join(b.TempDir(), "data")
	openOpts := func(budget int64) durable.Options {
		return durable.Options{
			Dir:        dataDir,
			Fsync:      durable.FsyncOff,
			PageBudget: budget,
			Ingest: ingest.Options{
				Enrich:    analysis.DefaultEnrichOptions(),
				CrawlTime: crawlTime,
			},
		}
	}
	listings := make([]ingest.Listing, 0, len(records))
	for _, rec := range records {
		listings = append(listings, ingest.Listing{Record: rec})
	}
	seed, err := durable.Open(openOpts(0))
	if err != nil {
		b.Fatalf("open seed store: %v", err)
	}
	if res, err := seed.Apply(ingest.Delta{Seq: 0, Listings: listings}); err != nil || !res.Applied {
		b.Fatalf("seed apply: %+v (err %v)", res, err)
	}
	if err := seed.WriteSnapshot(); err != nil {
		b.Fatalf("seed snapshot: %v", err)
	}
	eagerSrc := seed.Dataset().QuerySource()
	listings, records = nil, nil

	probes := scaleBenchQueries(rows)
	dump := query.Query{Fields: []string{"market", "package", "downloads"}, Limit: 2000}

	// Equivalence gate before believing any number: the lazily paged engine
	// must answer every probe — and the order-sensitive dump — byte-identically
	// to the materialized store it replaces. The full dump also forces every
	// column in, so the unbounded pool's residency afterwards is the
	// materialized column footprint the budget is derived from.
	lazy, err := durable.Open(openOpts(-1))
	if err != nil {
		b.Fatalf("lazy open: %v", err)
	}
	lazySrc := lazy.Dataset().QuerySource()
	for _, probe := range append(probes, struct {
		name string
		q    query.Query
	}{"dump", dump}) {
		pres, perr := lazySrc.Scan(probe.q)
		eres, eerr := eagerSrc.Scan(probe.q)
		pj := ingestCanonical(b, pres, perr)
		ej := ingestCanonical(b, eres, eerr)
		if !bytes.Equal(pj, ej) {
			b.Fatalf("%s: paged engine diverged from the materialized store:\npaged %.300s\neager %.300s", probe.name, pj, ej)
		}
	}
	if _, err := lazySrc.Scan(query.Query{Limit: 1}); err != nil {
		b.Fatalf("column sweep: %v", err)
	}
	totalBytes := lazy.PageStats().ResidentBytes
	if totalBytes == 0 {
		b.Fatal("unbounded paged store reports no resident bytes")
	}
	if err := lazy.Close(); err != nil {
		b.Fatalf("close lazy store: %v", err)
	}
	if err := seed.Close(); err != nil {
		b.Fatalf("close seed store: %v", err)
	}

	// The headline configuration: a budget a quarter of the materialized
	// column bytes. Every probe must still be served — the pool cannot evict a
	// query's own pinned columns, so a probe failing here means the budget
	// claim does not hold.
	budget := totalBytes / 4
	paged, err := durable.Open(openOpts(budget))
	if err != nil {
		b.Fatalf("budgeted open: %v", err)
	}
	defer paged.Close()
	src := paged.Dataset().QuerySource()

	// Page-in vs warm-hit latency on the first probe: the first scan after a
	// cold open pays the disk read + page decode, repeats hit the resident
	// column.
	pageInStart := time.Now()
	if _, err := src.Scan(probes[0].q); err != nil {
		b.Fatalf("page-in scan: %v", err)
	}
	pageIn := time.Since(pageInStart)
	var warm time.Duration
	for i := 0; i < 5; i++ {
		start := time.Now()
		if _, err := src.Scan(probes[0].q); err != nil {
			b.Fatalf("warm scan: %v", err)
		}
		if d := time.Since(start); warm == 0 || d < warm {
			warm = d
		}
	}

	// Steady state: cycle the whole probe mix through the budget and require
	// residency under the budget after every request.
	var residentPeak int64
	for round := 0; round < 3; round++ {
		for _, probe := range probes {
			if _, err := src.Scan(probe.q); err != nil {
				b.Fatalf("steady-state %s: %v", probe.name, err)
			}
			st := paged.PageStats()
			if st.ResidentBytes > st.Budget {
				b.Fatalf("resident %d over budget %d after %s", st.ResidentBytes, st.Budget, probe.name)
			}
			if st.ResidentBytes > residentPeak {
				residentPeak = st.ResidentBytes
			}
		}
	}
	st := paged.PageStats()
	printOnce("paged", fmt.Sprintf(
		"PAGEDSTAT rows=%d total_col_bytes=%d budget=%d budget_ratio=%.2f page_in_us=%.1f warm_us=%.1f warm_speedup=%.1f resident_peak=%d fetches=%d evictions=%d quarantines=%d identical=1",
		rows, totalBytes, budget, float64(budget)/float64(totalBytes),
		float64(pageIn.Nanoseconds())/1000, float64(warm.Nanoseconds())/1000,
		float64(pageIn)/float64(warm),
		residentPeak, st.Fetches, st.Evictions, st.Quarantines))
	if st.Quarantines != 0 {
		b.Fatalf("healthy snapshot quarantined during bench: %+v", st)
	}

	// The timed loop: one warm-path scan per iteration — the steady-state
	// serving cost under the budget.
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := src.Scan(probes[i%len(probes)].q); err != nil {
			b.Fatal(err)
		}
	}
}
