// BenchmarkServeSustained measures the production serving layer end to end
// over the enriched 400-app corpus: a sustained mixed hit/miss workload
// through the full middleware chain, with the cache contract asserted before
// any timing — a hit must be byte-identical to the miss that populated it,
// and the hit path must be >= 10x faster at p50 than the cold compute it
// replaces. The SERVESTAT line feeds the CI bench-smoke artifact
// (BENCH_serve.json) the same way SCANSTAT and ANALYSESSTAT do.
package marketscope_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"marketscope/internal/market"
)

var (
	serveBenchOnce sync.Once
	serveBenchSrv  *market.Server
)

// serveBenchServer wraps the shared enriched dataset in a fully configured
// serving chain (cache, inflight gate, timeout, gzip). The timeout is wide —
// this bench measures serving cost, not deadline behaviour.
func serveBenchServer(b *testing.B) *market.Server {
	ds := benchScanDataset(b)
	serveBenchOnce.Do(func() {
		srv := market.NewServer(market.NewStore(market.Profile{Name: "bench"}))
		srv.AttachScan(ds.QuerySource())
		cfg := market.DefaultServeConfig()
		cfg.Timeout = 30 * time.Second
		srv.ConfigureServing(cfg)
		serveBenchSrv = srv
	})
	return serveBenchSrv
}

// serveBenchRequest is one entry of the sustained workload: a POST body and
// the route it goes to.
type serveBenchRequest struct {
	path string
	body []byte
}

// serveBenchWorkload marshals the scan and aggregation shapes the engine
// benches sweep into HTTP bodies — the hot set every worker cycles through.
func serveBenchWorkload(b *testing.B) []serveBenchRequest {
	b.Helper()
	var reqs []serveBenchRequest
	for _, tc := range scanBenchQueries() {
		body, err := json.Marshal(tc.q)
		if err != nil {
			b.Fatal(err)
		}
		reqs = append(reqs, serveBenchRequest{market.ScanPath, body})
	}
	for _, tc := range aggBenchRequests() {
		body, err := json.Marshal(tc.a)
		if err != nil {
			b.Fatal(err)
		}
		reqs = append(reqs, serveBenchRequest{market.AggregatePath, body})
	}
	return reqs
}

// servePost drives one request through the in-process serving chain.
func servePost(srv *market.Server, spec serveBenchRequest) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, spec.path, bytes.NewReader(spec.body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

// durQuantile reads the q-quantile from a sample of latencies (sorted in
// place).
func durQuantile(ds []time.Duration, q float64) time.Duration {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[int(q*float64(len(ds)-1))]
}

func BenchmarkServeSustained(b *testing.B) {
	srv := serveBenchServer(b)
	workload := serveBenchWorkload(b)

	// Correctness gate: for every workload request the cold miss and the
	// cache hit that follows must answer byte-identically.
	srv.BumpEpoch() // start from a cold cache whatever ran before
	for _, spec := range workload {
		miss := servePost(srv, spec)
		hit := servePost(srv, spec)
		if miss.Code != http.StatusOK || hit.Code != http.StatusOK {
			b.Fatalf("%s: status %d then %d", spec.path, miss.Code, hit.Code)
		}
		if miss.Header().Get("X-Cache") != "MISS" || hit.Header().Get("X-Cache") != "HIT" {
			b.Fatalf("%s: X-Cache %q then %q, want MISS then HIT",
				spec.path, miss.Header().Get("X-Cache"), hit.Header().Get("X-Cache"))
		}
		if !bytes.Equal(miss.Body.Bytes(), hit.Body.Bytes()) {
			b.Fatalf("%s: cache hit diverges from the miss that populated it:\nmiss %.200s\nhit  %.200s",
				spec.path, miss.Body.Bytes(), hit.Body.Bytes())
		}
	}

	// Perf gate: serving from cache must beat cold compute by >= 10x at p50,
	// measured apples-to-apples — the same request shape through the same
	// serving chain, cold via never-before-seen cache keys (a limit far above
	// the matched count varies the key without varying the work), hit via one
	// cached key. The gate runs on whichever workload shape computes slowest.
	const freshLimitBase = 100000
	freshSpec := func(shape int, seq int) serveBenchRequest {
		if shape < len(scanBenchQueries()) {
			q := scanBenchQueries()[shape].q
			q.Limit = freshLimitBase + seq
			body, err := json.Marshal(q)
			if err != nil {
				b.Fatal(err)
			}
			return serveBenchRequest{market.ScanPath, body}
		}
		a := aggBenchRequests()[shape-len(scanBenchQueries())].a
		a.Limit = freshLimitBase + seq
		body, err := json.Marshal(a)
		if err != nil {
			b.Fatal(err)
		}
		return serveBenchRequest{market.AggregatePath, body}
	}
	timedPost := func(spec serveBenchRequest, wantCache string) time.Duration {
		req := httptest.NewRequest(http.MethodPost, spec.path, bytes.NewReader(spec.body))
		rec := httptest.NewRecorder()
		start := time.Now()
		srv.ServeHTTP(rec, req)
		d := time.Since(start)
		if rec.Code != http.StatusOK {
			b.Fatalf("%s: status %d (%.200s)", spec.path, rec.Code, rec.Body.String())
		}
		if got := rec.Header().Get("X-Cache"); got != wantCache {
			b.Fatalf("%s: X-Cache %q, want %q", spec.path, got, wantCache)
		}
		return d
	}
	seq := 0
	heaviest, heaviestCold := 0, time.Duration(0)
	for shape := 0; shape < len(workload); shape++ {
		probe := make([]time.Duration, 9)
		for i := range probe {
			seq++
			probe[i] = timedPost(freshSpec(shape, seq), "MISS")
		}
		if p50 := durQuantile(probe, 0.50); p50 > heaviestCold {
			heaviest, heaviestCold = shape, p50
		}
	}
	coldSamples := make([]time.Duration, 31)
	for i := range coldSamples {
		seq++
		coldSamples[i] = timedPost(freshSpec(heaviest, seq), "MISS")
	}
	hitSpec := freshSpec(heaviest, 0)
	timedPost(hitSpec, "MISS") // populate
	hitSamples := make([]time.Duration, 301)
	for i := range hitSamples {
		hitSamples[i] = timedPost(hitSpec, "HIT")
	}
	hitP50, coldP50 := durQuantile(hitSamples, 0.50), durQuantile(coldSamples, 0.50)
	hitSpeedup := float64(coldP50) / float64(hitP50)
	if hitSpeedup < 10 {
		b.Fatalf("cache-hit p50 %v only %.1fx faster than cold compute p50 %v (shape %d), want >= 10x",
			hitP50, hitSpeedup, coldP50, heaviest)
	}

	// Sustained phase: a fixed wall-clock window of concurrent mixed traffic —
	// the hot set plus a steady trickle of never-before-seen queries so the
	// miss path stays exercised — recording client-side latencies and the
	// server's own counters.
	const (
		serveWorkers = 8
		serveWindow  = 400 * time.Millisecond
		missEvery    = 10 // one fresh-miss request per worker per missEvery
	)
	before := srv.ServingStats()
	latencies := make([][]time.Duration, serveWorkers)
	var missSeq atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < serveWorkers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; time.Since(start) < serveWindow; i++ {
				spec := workload[(w+i)%len(workload)]
				if i%missEvery == 0 {
					q := scanBenchQueries()[0].q
					q.Limit = 1000 + int(missSeq.Add(1)) // unseen key -> guaranteed miss
					body, err := json.Marshal(q)
					if err != nil {
						b.Error(err)
						return
					}
					spec = serveBenchRequest{market.ScanPath, body}
				}
				t0 := time.Now()
				rec := servePost(srv, spec)
				latencies[w] = append(latencies[w], time.Since(t0))
				if rec.Code != http.StatusOK {
					b.Errorf("worker %d: status %d (%.200s)", w, rec.Code, rec.Body.String())
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if b.Failed() {
		b.FailNow()
	}
	after := srv.ServingStats()

	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	hits := after.CacheHits - before.CacheHits
	misses := after.CacheMisses - before.CacheMisses
	hitRate := float64(hits) / float64(maxInt64(hits+misses, 1))
	printOnce("serve-sustained", fmt.Sprintf(
		"SERVESTAT requests=%d qps=%.0f p50_us=%d p99_us=%d hit_rate=%.2f hits=%d misses=%d hit_p50_us=%d cold_p50_us=%d hit_speedup=%.1f shed=%d timeouts=%d",
		len(all), float64(len(all))/elapsed.Seconds(),
		durQuantile(all, 0.50).Microseconds(), durQuantile(all, 0.99).Microseconds(),
		hitRate, hits, misses,
		hitP50.Microseconds(), coldP50.Microseconds(), hitSpeedup,
		after.Shed-before.Shed, after.Timeouts-before.Timeouts))

	// The timed loop: steady-state serving of the hot (cached) set through
	// the full chain.
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rec := servePost(srv, workload[i%len(workload)]); rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
