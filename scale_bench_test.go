// Scaling benches: the compressed segmented column store (dictionary
// encoding, bitmap posting lists, zone maps) over metadata-only corpora of
// 100k rows by default and up to 1M via MARKETSCOPE_SCALE_ROWS. Each bench
// first proves the compressed engine row-identical to the uncompressed
// baseline (the PR 4/5 planner) and to the row-at-a-time oracle, then
// asserts the speedup the compression work claims, and finally records the
// 400 -> 100k (-> 1M) scaling curve as SCANSTAT/ANALYSESSTAT keys for the
// CI bench artifacts.
package marketscope_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"marketscope/internal/analysis"
	"marketscope/internal/query"
	"marketscope/internal/synth"
)

// scaledDefaultRows is the headline bench corpus size; the paper's corpora
// are millions of listings, and 100k is the largest size that keeps CI
// bench-smoke in seconds. MARKETSCOPE_SCALE_ROWS overrides (e.g. 1000000
// for the full scaling story on a workstation).
const scaledDefaultRows = 100_000

const scaledSeed = 1

func scaledRowsTarget() int {
	if s := os.Getenv("MARKETSCOPE_SCALE_ROWS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return scaledDefaultRows
}

// scaledFixture caches one corpus size: the dataset, the compressed engine
// (production QuerySource) and the uncompressed baseline engine.
type scaledFixture struct {
	ds   *analysis.Dataset
	src  query.Source
	base query.Source
}

var (
	scaledMu       sync.Mutex
	scaledFixtures = map[int]*scaledFixture{}
)

func benchScaledFixture(b *testing.B, rows int) *scaledFixture {
	b.Helper()
	scaledMu.Lock()
	defer scaledMu.Unlock()
	if f, ok := scaledFixtures[rows]; ok {
		return f
	}
	ds, err := analysis.NewScaledDataset(synth.ScaleConfig{Seed: scaledSeed, Rows: rows})
	if err != nil {
		b.Fatalf("scaled dataset (%d rows): %v", rows, err)
	}
	f := &scaledFixture{ds: ds, src: ds.QuerySource(), base: ds.QueryBaseline()}
	scaledFixtures[rows] = f
	return f
}

// scaleBenchQueries are the shapes the compression work targets: dictionary
// equality (bitmap AND), dictionary in (bitmap OR then AND), and a demoted
// wide date range only zone maps can cheapen (it covers most of the corpus,
// so the planner rejects the sorted index and scans — skipping the segments
// whose zone bounds exclude the range).
func scaleBenchQueries(rows int) []struct {
	name string
	q    query.Query
} {
	return []struct {
		name string
		q    query.Query
	}{
		{"dict_eq", query.Query{
			Fields: []string{"package"},
			Filters: []query.Filter{
				{Field: "market", Op: query.OpEq, Value: "Tencent Myapp"},
				{Field: "market_category", Op: query.OpEq, Value: "Unclassified"},
			},
			Limit: 1,
		}},
		{"dict_in", query.Query{
			Fields: []string{"package"},
			Filters: []query.Filter{
				{Field: "market", Op: query.OpIn, Value: []any{"Tencent Myapp", "Baidu Market", "360 Market"}},
				{Field: "market_category", Op: query.OpIn, Value: []any{"Unclassified", "102229", "Online Game"}},
			},
			Limit: 1,
		}},
		{"zone_range", query.Query{
			Fields: []string{"package"},
			Filters: []query.Filter{
				// The ramp places the first ~60% of release dates in the
				// first ~60% of rows: too wide for the sorted index (demoted
				// at > n/2), cheap for zone maps (the last ~40% of segments
				// have min release dates past the bound).
				{Field: "release_date", Op: query.OpLt, Value: "2017-01-01"},
			},
			Limit: 1,
		}},
	}
}

// requireSameScaled runs one query on the compressed engine, the baseline
// engine and the oracle, and fails unless all three agree on rows and match
// counts.
func requireSameScaled(b *testing.B, f *scaledFixture, name string, q query.Query) *query.Result {
	b.Helper()
	compressed, err := f.src.Scan(q)
	if err != nil {
		b.Fatalf("%s: compressed scan: %v", name, err)
	}
	baseline, err := f.base.Scan(q)
	if err != nil {
		b.Fatalf("%s: baseline scan: %v", name, err)
	}
	oracle, err := f.src.(query.OracleSource).ScanOracle(q)
	if err != nil {
		b.Fatalf("%s: oracle scan: %v", name, err)
	}
	cj, _ := json.Marshal(compressed.Rows)
	bj, _ := json.Marshal(baseline.Rows)
	oj, _ := json.Marshal(oracle.Rows)
	if !bytes.Equal(cj, bj) || !bytes.Equal(cj, oj) ||
		compressed.Meta.TotalMatched != baseline.Meta.TotalMatched ||
		compressed.Meta.TotalMatched != oracle.Meta.TotalMatched {
		b.Fatalf("%s: engines disagree: compressed %s (%d), baseline %s (%d), oracle %s (%d)",
			name, cj, compressed.Meta.TotalMatched, bj, baseline.Meta.TotalMatched, oj, oracle.Meta.TotalMatched)
	}
	if compressed.Meta.TotalMatched == 0 {
		b.Fatalf("%s: matched nothing — the shape stopped exercising the corpus", name)
	}
	return compressed
}

// timePerOp is the curve probe: best-of-rounds mean over iters runs.
func timePerOp(fn func(), rounds, iters int) time.Duration {
	best := time.Duration(1<<63 - 1)
	for r := 0; r < rounds; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		if d := time.Since(start) / time.Duration(iters); d < best {
			best = d
		}
	}
	return best
}

// BenchmarkScanQueryScale measures the compressed engine against the
// uncompressed baseline over the scaled corpus. Before timing it asserts,
// on the headline corpus:
//
//   - row equivalence (compressed == baseline == oracle) on every shape;
//   - the dictionary+bitmap path >= 2x over the baseline planner for the
//     == and in shapes;
//   - zone maps provably skipping segments on the demoted range, with
//     skipped + scanned segment rows covering the dataset exactly.
//
// The SCANSTAT line carries the 400 -> 100k (-> 1M) per-shape scaling curve
// under per-size keys, so BENCH_query.json records the whole curve (the
// stats map folds same-named keys, so every size gets its own).
func BenchmarkScanQueryScale(b *testing.B) {
	rows := scaledRowsTarget()
	f := benchScaledFixture(b, rows)
	cases := scaleBenchQueries(rows)

	for _, tc := range cases {
		requireSameScaled(b, f, tc.name, tc.q)
	}

	// Zone-map proof on the demoted range.
	zone := cases[2].q
	res, err := f.src.Scan(zone)
	if err != nil {
		b.Fatal(err)
	}
	ex := res.Meta.Explain
	if ex == nil || ex.SegmentsSkipped == 0 {
		b.Fatalf("zone range skipped no segments: explain %+v", ex)
	}
	if ex.SegmentRowsSkipped+ex.SegmentRowsScanned != ex.DatasetRows {
		b.Fatalf("zone tallies %d+%d do not cover %d rows",
			ex.SegmentRowsSkipped, ex.SegmentRowsScanned, ex.DatasetRows)
	}

	// Speedup gates: dictionary bitmaps vs the PR 4/5 sorted-posting planner.
	speedups := map[string]float64{}
	for _, tc := range cases[:2] {
		q := tc.q
		compressedT, baselineT := scanSpeedup(
			func() { _, _ = f.src.Scan(q) },
			func() { _, _ = f.base.Scan(q) },
			6, 40, 40)
		speedup := float64(baselineT) / float64(compressedT)
		if speedup < 2 {
			b.Fatalf("%s: compressed %.2fx over baseline, want >= 2x (compressed %v, baseline %v)",
				tc.name, speedup, compressedT, baselineT)
		}
		speedups[tc.name] = speedup
	}

	// Scaling curve: the same shapes at 400 rows, the headline size and any
	// env-raised size. The 400-row corpus is literally the prefix of the
	// larger ones (StreamListings' determinism contract), so the curve varies
	// only the row count.
	sizes := []int{400, scaledDefaultRows}
	if rows != scaledDefaultRows {
		sizes = append(sizes, rows)
	}
	curve := ""
	for _, size := range sizes {
		sf := benchScaledFixture(b, size)
		for _, tc := range scaleBenchQueries(size)[:2] {
			q := tc.q
			d := timePerOp(func() { _, _ = sf.src.Scan(q) }, 4, 40)
			curve += fmt.Sprintf(" curve_%s_ns_%d=%d", tc.name, size, d.Nanoseconds())
		}
	}
	printOnce("scan-scale", fmt.Sprintf(
		"SCANSTAT scale_rows=%d scale_eq_speedup=%.1f scale_in_speedup=%.1f scale_segments_skipped=%d scale_segments_scanned=%d%s",
		rows, speedups["dict_eq"], speedups["dict_in"], ex.SegmentsSkipped, ex.SegmentsScanned, curve))

	for _, tc := range cases {
		q := tc.q
		b.Run(tc.name+"/compressed", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := f.src.Scan(q); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(tc.name+"/baseline", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := f.base.Scan(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// scaleAggregate is the group-by shape: both keys dictionary-encoded, so
// the compressed engine groups on packed integer codes instead of building
// a string key per row.
func scaleAggregate() query.Aggregate {
	return query.Aggregate{
		GroupBy: []string{"market", "market_category"},
		Aggregates: []query.AggSpec{
			{Op: query.AggCount, As: "n"},
			{Op: query.AggMean, Field: "rating", As: "mean_rating"},
		},
		Sort:  []query.SortKey{{Field: "n", Desc: true}},
		Limit: 25,
	}
}

// BenchmarkAggregateScale measures grouped aggregation over the scaled
// corpus: packed dictionary group keys vs the baseline's byte-appended
// string keys. Asserts row equivalence (compressed == baseline == oracle)
// and >= 2x before timing, and emits the aggregation scaling curve under
// ANALYSESSTAT so BENCH_analyses.json records it.
func BenchmarkAggregateScale(b *testing.B) {
	rows := scaledRowsTarget()
	f := benchScaledFixture(b, rows)
	agg := scaleAggregate()

	cSrc := f.src.(query.AggregateSource)
	bSrc := f.base.(query.AggregateSource)
	compressed, err := cSrc.Aggregate(agg)
	if err != nil {
		b.Fatal(err)
	}
	baseline, err := bSrc.Aggregate(agg)
	if err != nil {
		b.Fatal(err)
	}
	oracle, err := f.src.(query.AggregateOracleSource).AggregateOracle(agg)
	if err != nil {
		b.Fatal(err)
	}
	cj, _ := json.Marshal(compressed.Rows)
	bj, _ := json.Marshal(baseline.Rows)
	oj, _ := json.Marshal(oracle.Rows)
	if !bytes.Equal(cj, bj) || !bytes.Equal(cj, oj) {
		b.Fatalf("aggregate engines disagree:\ncompressed %s\nbaseline   %s\noracle     %s", cj, bj, oj)
	}

	compressedT, baselineT := scanSpeedup(
		func() { _, _ = cSrc.Aggregate(agg) },
		func() { _, _ = bSrc.Aggregate(agg) },
		6, 10, 10)
	speedup := float64(baselineT) / float64(compressedT)
	if speedup < 2 {
		b.Fatalf("group-by: compressed %.2fx over baseline, want >= 2x (compressed %v, baseline %v)",
			speedup, compressedT, baselineT)
	}

	sizes := []int{400, scaledDefaultRows}
	if rows != scaledDefaultRows {
		sizes = append(sizes, rows)
	}
	curve := ""
	for _, size := range sizes {
		sf := benchScaledFixture(b, size)
		sSrc := sf.src.(query.AggregateSource)
		d := timePerOp(func() { _, _ = sSrc.Aggregate(agg) }, 4, 10)
		curve += fmt.Sprintf(" curve_groupby_ns_%d=%d", size, d.Nanoseconds())
	}
	printOnce("agg-scale", fmt.Sprintf(
		"ANALYSESSTAT scale_rows=%d scale_groupby_speedup=%.1f scale_groups=%d%s",
		rows, speedup, compressed.Meta.Returned, curve))

	b.Run("compressed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cSrc.Aggregate(agg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bSrc.Aggregate(agg); err != nil {
				b.Fatal(err)
			}
		}
	})
}
