// Benchmark harness: one bench per table and figure of the paper, plus
// ablation benches for the design choices called out in DESIGN.md.
//
// Each bench measures the cost of recomputing its experiment from the shared
// enriched dataset (the fixture itself — generation, crawl, parsing and
// enrichment — is built once and excluded from timings) and prints the
// reproduced rows/series once, so `go test -bench=. -benchmem` regenerates
// the full set of artifacts recorded in EXPERIMENTS.md.
package marketscope_test

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"

	"marketscope/internal/analysis"
	"marketscope/internal/clonedetect"
	"marketscope/internal/core"
	"marketscope/internal/crawler"
	"marketscope/internal/market"
	"marketscope/internal/query"
	"marketscope/internal/report"
	"marketscope/internal/synth"
)

var (
	benchOnce    sync.Once
	benchResults *core.Results
	benchErr     error

	printMu sync.Mutex
	printed = map[string]bool{}
)

// benchFixture runs the full study once (1,200 generated apps across the 17
// markets) and shares the results across all benches.
func benchFixture(b *testing.B) *core.Results {
	b.Helper()
	benchOnce.Do(func() {
		cfg := core.DefaultConfig()
		benchResults, benchErr = core.Run(context.Background(), cfg)
	})
	if benchErr != nil {
		b.Fatalf("bench fixture: %v", benchErr)
	}
	return benchResults
}

// printOnce emits the reproduced artifact a single time per `go test`
// invocation, keyed by experiment ID.
func printOnce(id, artifact string) {
	printMu.Lock()
	defer printMu.Unlock()
	if printed[id] {
		return
	}
	printed[id] = true
	fmt.Fprintf(os.Stdout, "\n----- reproduced %s -----\n%s\n", id, artifact)
}

func BenchmarkTable1_MarketOverview(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var rows []analysis.MarketOverviewRow
	var totals analysis.OverviewTotals
	for i := 0; i < b.N; i++ {
		rows = analysis.MarketOverview(r.Dataset)
		totals = analysis.Totals(r.Dataset, rows)
	}
	b.StopTimer()
	printOnce("T1", report.Table1(rows, totals))
}

func BenchmarkFigure1_Categories(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var dists []analysis.CategoryDistribution
	for i := 0; i < b.N; i++ {
		dists = analysis.Categories(r.Dataset)
	}
	b.StopTimer()
	printOnce("F1", report.Figure1(dists))
}

func BenchmarkFigure2_Downloads(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var rows []analysis.DownloadRow
	for i := 0; i < b.N; i++ {
		rows = analysis.Downloads(r.Dataset)
	}
	b.StopTimer()
	printOnce("F2", report.Figure2(rows))
}

func BenchmarkFigure3_MinAPILevel(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var gp, cn analysis.APILevelDistribution
	for i := 0; i < b.N; i++ {
		gp, cn = analysis.APILevels(r.Dataset)
	}
	b.StopTimer()
	printOnce("F3", report.Figure3(gp, cn))
}

func BenchmarkFigure4_ReleaseDates(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var gp, cn analysis.ReleaseDateDistribution
	for i := 0; i < b.N; i++ {
		gp, cn = analysis.ReleaseDates(r.Dataset)
	}
	b.StopTimer()
	printOnce("F4", report.Figure4(gp, cn))
}

func BenchmarkFigure5_Libraries(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var rows []analysis.LibraryUsageRow
	for i := 0; i < b.N; i++ {
		rows = analysis.LibraryUsage(r.Dataset)
	}
	b.StopTimer()
	printOnce("F5", report.Figure5(rows))
}

func BenchmarkTable2_TopLibraries(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var gp, cn []analysis.LibraryRank
	for i := 0; i < b.N; i++ {
		gp, cn = analysis.TopLibraries(r.Dataset, 10)
	}
	b.StopTimer()
	printOnce("T2", report.Table2(gp, cn))
}

func BenchmarkFigure6_Ratings(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var rows []analysis.RatingDistribution
	for i := 0; i < b.N; i++ {
		rows = analysis.Ratings(r.Dataset)
	}
	b.StopTimer()
	printOnce("F6", report.Figure6(rows))
}

func BenchmarkFigure7_DeveloperMarkets(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var stats analysis.PublishingStats
	for i := 0; i < b.N; i++ {
		stats = analysis.Publishing(r.Dataset)
	}
	b.StopTimer()
	printOnce("F7", report.Figure7(stats))
}

func BenchmarkFigure8_ClusterCDFs(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var clusters analysis.ClusterCDFs
	for i := 0; i < b.N; i++ {
		clusters = analysis.Clusters(r.Dataset)
	}
	b.StopTimer()
	printOnce("F8", report.Figure8(clusters))
}

func BenchmarkFigure9_OutdatedApps(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var rows []analysis.OutdatedRow
	for i := 0; i < b.N; i++ {
		rows = analysis.Outdated(r.Dataset)
	}
	b.StopTimer()
	printOnce("F9", report.Figure9(rows))
}

func BenchmarkTable3_FakeAndClones(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var res *analysis.MisbehaviorResult
	for i := 0; i < b.N; i++ {
		res = analysis.Misbehavior(r.Dataset, analysis.DefaultMisbehaviorOptions())
	}
	b.StopTimer()
	printOnce("T3", report.Table3(res))
}

func BenchmarkFigure10_CloneHeatmap(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var res *analysis.MisbehaviorResult
	for i := 0; i < b.N; i++ {
		res = analysis.Misbehavior(r.Dataset, analysis.DefaultMisbehaviorOptions())
	}
	b.StopTimer()
	printOnce("F10", report.Figure10(res.Heatmap, r.Dataset.MarketNames()))
}

func BenchmarkFigure11_OverPrivilege(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var gp, cn analysis.OverPrivilegeStats
	for i := 0; i < b.N; i++ {
		gp, cn = analysis.OverPrivilege(r.Dataset)
	}
	b.StopTimer()
	printOnce("F11", report.Figure11(gp, cn))
}

func BenchmarkTable4_MalwarePrevalence(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var rows []analysis.MalwareRow
	var avg analysis.MalwareAverages
	for i := 0; i < b.N; i++ {
		rows = analysis.MalwarePrevalence(r.Dataset)
		avg = analysis.AverageChineseMalware(r.Dataset, rows)
	}
	b.StopTimer()
	printOnce("T4", report.Table4(rows, avg))
}

func BenchmarkTable5_TopMalware(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var entries []analysis.TopMalwareEntry
	for i := 0; i < b.N; i++ {
		entries = analysis.TopMalware(r.Dataset, 10)
	}
	b.StopTimer()
	printOnce("T5", report.Table5(entries))
}

func BenchmarkFigure12_MalwareFamilies(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var gp, cn []analysis.FamilyShare
	for i := 0; i < b.N; i++ {
		gp, cn = analysis.MalwareFamilies(r.Dataset, 10, 15)
	}
	b.StopTimer()
	printOnce("F12", report.Figure12(gp, cn))
}

func BenchmarkTable6_MalwareRemoval(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var rows []analysis.RemovalRow
	var still analysis.StillHostedStats
	for i := 0; i < b.N; i++ {
		rows = analysis.PostAnalysis(r.Dataset, r.SecondCrawl, 10)
		still = analysis.StillHosted(r.Dataset, r.SecondCrawl, 10)
	}
	b.StopTimer()
	printOnce("T6", report.Table6(rows, still))
}

func BenchmarkFigure13_Radar(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var rows []analysis.RadarRow
	for i := 0; i < b.N; i++ {
		rows = analysis.Radar(r.Dataset, nil)
	}
	b.StopTimer()
	printOnce("F13", report.Figure13(rows))
}

// BenchmarkScanQuery measures one full query-engine scan over the enriched
// dataset: two filters, a two-key sort and a limit — the acceptance query of
// the flexible scan layer (see DESIGN.md).
func BenchmarkScanQuery(b *testing.B) {
	r := benchFixture(b)
	src := r.Dataset.QuerySource()
	q := query.Query{
		Fields: []string{"package", "market", "av_positives", "av_family", "downloads"},
		Filters: []query.Filter{
			{Field: "market_chinese", Op: query.OpEq, Value: true},
			{Field: "av_positives", Op: query.OpGe, Value: 10},
		},
		Sort:  []query.SortKey{{Field: "av_positives", Desc: true}, {Field: "package"}},
		Limit: 10,
	}
	b.ReportAllocs()
	b.ResetTimer()
	var res *query.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = src.Scan(q)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printOnce("scan", report.ScanTable("Scan: flagged apps on Chinese markets", res))
}

// BenchmarkScanFilterOnly isolates the match stage through the count-only
// path programmatic consumers use: Dataset.CountMatching, a selective
// filter with no materialized rows.
func BenchmarkScanFilterOnly(b *testing.B) {
	r := benchFixture(b)
	flagged := query.Filter{Field: "av_positives", Op: query.OpGe, Value: 10}
	b.ReportAllocs()
	b.ResetTimer()
	matched := 0
	for i := 0; i < b.N; i++ {
		var err error
		matched, err = r.Dataset.CountMatching(flagged)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printOnce("scan-count", fmt.Sprintf("count-only scan: %d listings with AV-rank >= 10", matched))
}

// BenchmarkAblation_CloneThreshold sweeps the WuKong vector-distance
// threshold around the paper's 0.05 and reports the resulting code-clone
// share (DESIGN.md ablation #2).
func BenchmarkAblation_CloneThreshold(b *testing.B) {
	r := benchFixture(b)
	thresholds := []float64{0.01, 0.05, 0.10, 0.20}
	for _, th := range thresholds {
		b.Run(fmt.Sprintf("threshold_%.2f", th), func(b *testing.B) {
			b.ReportAllocs()
			var points []analysis.CloneThresholdPoint
			for i := 0; i < b.N; i++ {
				points = analysis.CloneThresholdSweep(r.Dataset, []float64{th})
			}
			b.StopTimer()
			p := points[0]
			printOnce(fmt.Sprintf("ablation-clone-threshold-%.2f", th),
				fmt.Sprintf("distance threshold %.2f -> average code-clone share %.2f%% (%d pairs, %d candidates)",
					p.Threshold, 100*p.AvgCodeCloneShare, p.Pairs, p.CandidatePairs))
		})
	}
}

// BenchmarkAblation_LibraryFiltering compares clone detection with and
// without third-party library filtering (DESIGN.md ablation #1).
func BenchmarkAblation_LibraryFiltering(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	var cmp analysis.LibraryFilteringComparison
	for i := 0; i < b.N; i++ {
		cmp = analysis.CompareLibraryFiltering(r.Dataset)
	}
	b.StopTimer()
	printOnce("ablation-library-filtering",
		fmt.Sprintf("with filtering: %.2f%% code clones (%d candidates); without: %.2f%% (%d candidates)",
			100*cmp.WithFiltering.AvgCodeCloneShare, cmp.WithFiltering.CandidatePairs,
			100*cmp.WithoutFiltering.AvgCodeCloneShare, cmp.WithoutFiltering.CandidatePairs))
}

// BenchmarkAblation_AVRankThreshold sweeps the AV-rank cut-off used to call a
// sample malware (DESIGN.md ablation #3).
func BenchmarkAblation_AVRankThreshold(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	var points []analysis.AVRankPoint
	for i := 0; i < b.N; i++ {
		points = analysis.AVRankSweep(r.Dataset, []int{1, 5, 10, 20, 30})
	}
	b.StopTimer()
	for _, p := range points {
		printOnce(fmt.Sprintf("ablation-avrank-%d", p.Threshold),
			fmt.Sprintf("AV-rank >= %d -> Google Play %.2f%% vs Chinese average %.2f%% (gap %.1fx)",
				p.Threshold, 100*p.GooglePlayShare, 100*p.ChineseAvgShare, p.Gap))
	}
}

// BenchmarkAblation_ParallelSearch compares the crawler with and without the
// cross-market parallel-search strategy on a small HTTP ecosystem and reports
// the cross-market coverage each achieves (DESIGN.md ablation #4).
func BenchmarkAblation_ParallelSearch(b *testing.B) {
	cfg := synth.SmallConfig()
	cfg.NumApps = 120
	cfg.NumDevelopers = 50
	cfg.Markets = []string{market.GooglePlay, "Baidu Market", "Huawei Market", "25PP", "Tencent Myapp"}
	eco, err := synth.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	stores, err := eco.Populate()
	if err != nil {
		b.Fatal(err)
	}
	var endpoints []crawler.Endpoint
	names := make([]string, 0, len(stores))
	for name := range stores {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		srv := &http.Server{Handler: market.NewServer(stores[name])}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		endpoints = append(endpoints, crawler.Endpoint{Name: name, BaseURL: "http://" + ln.Addr().String()})
	}
	apps := append([]*synth.App(nil), eco.Apps...)
	sort.Slice(apps, func(i, j int) bool { return apps[i].BaseDownloads > apps[j].BaseDownloads })
	var seeds []string
	for i := 0; i < 20 && i < len(apps); i++ {
		seeds = append(seeds, apps[i].Package)
	}

	for _, parallel := range []bool{true, false} {
		name := "with_parallel_search"
		if !parallel {
			name = "without_parallel_search"
		}
		b.Run(name, func(b *testing.B) {
			var records int
			for i := 0; i < b.N; i++ {
				c, err := crawler.New(crawler.Config{
					Endpoints:      endpoints,
					Seeds:          seeds,
					Concurrency:    8,
					ParallelSearch: parallel,
				})
				if err != nil {
					b.Fatal(err)
				}
				snap, err := c.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				records = snap.NumRecords()
			}
			b.StopTimer()
			printOnce("ablation-parallel-search-"+name,
				fmt.Sprintf("parallel search %v -> %d (market, package) records harvested", parallel, records))
		})
	}
}

var (
	pipelineSnapOnce sync.Once
	pipelineSnap     *crawler.Snapshot
	pipelineSnapErr  error
)

// pipelineSnapshot builds the synth corpus the pipeline benches share: large
// enough that the enrichment pool has real work per listing, small enough to
// run as a CI smoke bench with -benchtime 1x.
func pipelineSnapshot(b *testing.B) *crawler.Snapshot {
	b.Helper()
	pipelineSnapOnce.Do(func() {
		cfg := synth.SmallConfig()
		cfg.NumApps = 400
		cfg.NumDevelopers = 150
		eco, err := synth.Generate(cfg)
		if err != nil {
			pipelineSnapErr = err
			return
		}
		stores, err := eco.Populate()
		if err != nil {
			pipelineSnapErr = err
			return
		}
		pipelineSnap, pipelineSnapErr = crawler.SnapshotFromStores(stores, true, cfg.CrawlDate)
	})
	if pipelineSnapErr != nil {
		b.Fatalf("pipeline snapshot: %v", pipelineSnapErr)
	}
	return pipelineSnap
}

// benchWorkerCounts are the pool sizes the pipeline benches sweep: the serial
// oracle, a fixed mid-size pool and one worker per CPU.
func benchWorkerCounts() []int {
	counts := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// BenchmarkBuildDataset measures the parse stage (apk.Parse over every
// harvested archive) at several worker-pool sizes; workers=1 is the serial
// reference path.
func BenchmarkBuildDataset(b *testing.B) {
	snap := pipelineSnapshot(b)
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := analysis.BuildDatasetWith(snap, analysis.BuildOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

var (
	cloneCorpusOnce sync.Once
	cloneCorpus     []*clonedetect.AppInstance
	cloneCorpusErr  error
)

// cloneBenchCorpus parses and enriches the shared 400-app synth snapshot once
// and converts it into the clone detector's input instances, so the clone
// benches time detection alone.
func cloneBenchCorpus(b *testing.B) []*clonedetect.AppInstance {
	b.Helper()
	cloneCorpusOnce.Do(func() {
		snap := pipelineSnapshot(b)
		ds, err := analysis.BuildDatasetWith(snap, analysis.BuildOptions{})
		if err != nil {
			cloneCorpusErr = err
			return
		}
		ds.Enrich(analysis.DefaultEnrichOptions())
		cloneCorpus = ds.CloneInstances(true)
	})
	if cloneCorpusErr != nil {
		b.Fatalf("clone bench corpus: %v", cloneCorpusErr)
	}
	return cloneCorpus
}

// BenchmarkDetectCodeClones measures the two-phase code-clone detector over
// the 400-app synth corpus at several worker counts. workers_1 is the serial
// oracle (the pre-index sort-by-total sweep); every other sub-bench runs the
// candidate-indexed detector, which must emit the identical clone set while
// performing strictly fewer vector comparisons — both properties are asserted
// here so the bench-smoke CI artifact records them on every PR.
func BenchmarkDetectCodeClones(b *testing.B) {
	instances := cloneBenchCorpus(b)
	cfg := clonedetect.DefaultCodeConfig()

	oracle := clonedetect.DetectCodeClonesWith(instances, cfg, clonedetect.CloneOptions{Workers: 1})
	indexed := clonedetect.DetectCodeClonesWith(instances, cfg, clonedetect.CloneOptions{})
	if indexed.ComparedPairs >= oracle.ComparedPairs {
		b.Fatalf("candidate index did not prune: %d comparisons vs %d pre-index",
			indexed.ComparedPairs, oracle.ComparedPairs)
	}
	if len(indexed.Pairs) != len(oracle.Pairs) || indexed.CandidatePairs != oracle.CandidatePairs {
		b.Fatalf("indexed detector diverged from the oracle: %d/%d pairs, %d/%d candidates",
			len(indexed.Pairs), len(oracle.Pairs), indexed.CandidatePairs, oracle.CandidatePairs)
	}
	printOnce("clone-index", fmt.Sprintf(
		"code-clone candidate index over %d instances: %d vector comparisons vs %d pre-index blocking (%.1fx reduction), %d candidates, %d confirmed clones",
		len(instances), indexed.ComparedPairs, oracle.ComparedPairs,
		float64(oracle.ComparedPairs)/float64(maxInt(indexed.ComparedPairs, 1)),
		indexed.CandidatePairs, len(indexed.Pairs)))

	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				clonedetect.DetectCodeClonesWith(instances, cfg, clonedetect.CloneOptions{Workers: workers})
			}
		})
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BenchmarkEnrich measures the full enrichment pipeline (feature-DB learning,
// library detection, AV scan, permission analysis) at several worker-pool
// sizes. Enrichment runs once per dataset, so each iteration rebuilds the
// dataset outside the timer; workers=1 is the serial oracle the equivalence
// tests compare against.
func BenchmarkEnrich(b *testing.B) {
	snap := pipelineSnapshot(b)
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			opts := analysis.DefaultEnrichOptions()
			opts.Workers = workers
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ds, err := analysis.BuildDatasetWith(snap, analysis.BuildOptions{})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				ds.Enrich(opts)
			}
		})
	}
}
