// Benchmark harness: one bench per table and figure of the paper, plus
// ablation benches for the design choices called out in DESIGN.md.
//
// Each bench measures the cost of recomputing its experiment from the shared
// enriched dataset (the fixture itself — generation, crawl, parsing and
// enrichment — is built once and excluded from timings) and prints the
// reproduced rows/series once, so `go test -bench=. -benchmem` regenerates
// the full set of artifacts recorded in EXPERIMENTS.md.
package marketscope_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"marketscope/internal/analysis"
	"marketscope/internal/clonedetect"
	"marketscope/internal/core"
	"marketscope/internal/crawler"
	"marketscope/internal/market"
	"marketscope/internal/query"
	"marketscope/internal/report"
	"marketscope/internal/synth"
)

var (
	benchOnce    sync.Once
	benchResults *core.Results
	benchErr     error

	printMu sync.Mutex
	printed = map[string]bool{}
)

// benchFixture runs the full study once (1,200 generated apps across the 17
// markets) and shares the results across all benches.
func benchFixture(b *testing.B) *core.Results {
	b.Helper()
	benchOnce.Do(func() {
		cfg := core.DefaultConfig()
		benchResults, benchErr = core.Run(context.Background(), cfg)
	})
	if benchErr != nil {
		b.Fatalf("bench fixture: %v", benchErr)
	}
	return benchResults
}

// printOnce emits the reproduced artifact a single time per `go test`
// invocation, keyed by experiment ID.
func printOnce(id, artifact string) {
	printMu.Lock()
	defer printMu.Unlock()
	if printed[id] {
		return
	}
	printed[id] = true
	fmt.Fprintf(os.Stdout, "\n----- reproduced %s -----\n%s\n", id, artifact)
}

func BenchmarkTable1_MarketOverview(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var rows []analysis.MarketOverviewRow
	var totals analysis.OverviewTotals
	for i := 0; i < b.N; i++ {
		rows = analysis.MarketOverview(r.Dataset)
		totals = analysis.Totals(r.Dataset, rows)
	}
	b.StopTimer()
	printOnce("T1", report.Table1(rows, totals))
}

func BenchmarkFigure1_Categories(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var dists []analysis.CategoryDistribution
	for i := 0; i < b.N; i++ {
		dists = analysis.Categories(r.Dataset)
	}
	b.StopTimer()
	printOnce("F1", report.Figure1(dists))
}

func BenchmarkFigure2_Downloads(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var rows []analysis.DownloadRow
	for i := 0; i < b.N; i++ {
		rows = analysis.Downloads(r.Dataset)
	}
	b.StopTimer()
	printOnce("F2", report.Figure2(rows))
}

func BenchmarkFigure3_MinAPILevel(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var gp, cn analysis.APILevelDistribution
	for i := 0; i < b.N; i++ {
		gp, cn = analysis.APILevels(r.Dataset)
	}
	b.StopTimer()
	printOnce("F3", report.Figure3(gp, cn))
}

func BenchmarkFigure4_ReleaseDates(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var gp, cn analysis.ReleaseDateDistribution
	for i := 0; i < b.N; i++ {
		gp, cn = analysis.ReleaseDates(r.Dataset)
	}
	b.StopTimer()
	printOnce("F4", report.Figure4(gp, cn))
}

func BenchmarkFigure5_Libraries(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var rows []analysis.LibraryUsageRow
	for i := 0; i < b.N; i++ {
		rows = analysis.LibraryUsage(r.Dataset)
	}
	b.StopTimer()
	printOnce("F5", report.Figure5(rows))
}

func BenchmarkTable2_TopLibraries(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var gp, cn []analysis.LibraryRank
	for i := 0; i < b.N; i++ {
		gp, cn = analysis.TopLibraries(r.Dataset, 10)
	}
	b.StopTimer()
	printOnce("T2", report.Table2(gp, cn))
}

func BenchmarkFigure6_Ratings(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var rows []analysis.RatingDistribution
	for i := 0; i < b.N; i++ {
		rows = analysis.Ratings(r.Dataset)
	}
	b.StopTimer()
	printOnce("F6", report.Figure6(rows))
}

func BenchmarkFigure7_DeveloperMarkets(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var stats analysis.PublishingStats
	for i := 0; i < b.N; i++ {
		stats = analysis.Publishing(r.Dataset)
	}
	b.StopTimer()
	printOnce("F7", report.Figure7(stats))
}

func BenchmarkFigure8_ClusterCDFs(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var clusters analysis.ClusterCDFs
	for i := 0; i < b.N; i++ {
		clusters = analysis.Clusters(r.Dataset)
	}
	b.StopTimer()
	printOnce("F8", report.Figure8(clusters))
}

func BenchmarkFigure9_OutdatedApps(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var rows []analysis.OutdatedRow
	for i := 0; i < b.N; i++ {
		rows = analysis.Outdated(r.Dataset)
	}
	b.StopTimer()
	printOnce("F9", report.Figure9(rows))
}

func BenchmarkTable3_FakeAndClones(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var res *analysis.MisbehaviorResult
	for i := 0; i < b.N; i++ {
		res = analysis.Misbehavior(r.Dataset, analysis.DefaultMisbehaviorOptions())
	}
	b.StopTimer()
	printOnce("T3", report.Table3(res))
}

func BenchmarkFigure10_CloneHeatmap(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var res *analysis.MisbehaviorResult
	for i := 0; i < b.N; i++ {
		res = analysis.Misbehavior(r.Dataset, analysis.DefaultMisbehaviorOptions())
	}
	b.StopTimer()
	printOnce("F10", report.Figure10(res.Heatmap, r.Dataset.MarketNames()))
}

func BenchmarkFigure11_OverPrivilege(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var gp, cn analysis.OverPrivilegeStats
	for i := 0; i < b.N; i++ {
		gp, cn = analysis.OverPrivilege(r.Dataset)
	}
	b.StopTimer()
	printOnce("F11", report.Figure11(gp, cn))
}

func BenchmarkTable4_MalwarePrevalence(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var rows []analysis.MalwareRow
	var avg analysis.MalwareAverages
	for i := 0; i < b.N; i++ {
		rows = analysis.MalwarePrevalence(r.Dataset)
		avg = analysis.AverageChineseMalware(r.Dataset, rows)
	}
	b.StopTimer()
	printOnce("T4", report.Table4(rows, avg))
}

func BenchmarkTable5_TopMalware(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var entries []analysis.TopMalwareEntry
	for i := 0; i < b.N; i++ {
		entries = analysis.TopMalware(r.Dataset, 10)
	}
	b.StopTimer()
	printOnce("T5", report.Table5(entries))
}

func BenchmarkFigure12_MalwareFamilies(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var gp, cn []analysis.FamilyShare
	for i := 0; i < b.N; i++ {
		gp, cn = analysis.MalwareFamilies(r.Dataset, 10, 15)
	}
	b.StopTimer()
	printOnce("F12", report.Figure12(gp, cn))
}

func BenchmarkTable6_MalwareRemoval(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var rows []analysis.RemovalRow
	var still analysis.StillHostedStats
	for i := 0; i < b.N; i++ {
		rows = analysis.PostAnalysis(r.Dataset, r.SecondCrawl, 10)
		still = analysis.StillHosted(r.Dataset, r.SecondCrawl, 10)
	}
	b.StopTimer()
	printOnce("T6", report.Table6(rows, still))
}

func BenchmarkFigure13_Radar(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var rows []analysis.RadarRow
	for i := 0; i < b.N; i++ {
		rows = analysis.Radar(r.Dataset, nil)
	}
	b.StopTimer()
	printOnce("F13", report.Figure13(rows))
}

// scanBenchQueries are the query shapes BenchmarkScanQuery sweeps: the
// acceptance query (indexed equality + indexed range + two-key sort +
// limit), a pure point lookup, a range top-K, and a residual-only query no
// index can answer (the column-scan floor).
func scanBenchQueries() []struct {
	name string
	q    query.Query
} {
	return []struct {
		name string
		q    query.Query
	}{
		{"selective", query.Query{
			Fields: []string{"package", "market", "av_positives", "av_family", "downloads"},
			Filters: []query.Filter{
				{Field: "market_chinese", Op: query.OpEq, Value: true},
				{Field: "av_positives", Op: query.OpGe, Value: 10},
			},
			Sort:  []query.SortKey{{Field: "av_positives", Desc: true}, {Field: "package"}},
			Limit: 10,
		}},
		{"point_lookup", query.Query{
			Fields: []string{"package", "downloads"},
			Filters: []query.Filter{
				{Field: "market", Op: query.OpEq, Value: "Tencent Myapp"},
				{Field: "flagged_malware", Op: query.OpEq, Value: true},
			},
			Sort: []query.SortKey{{Field: "package"}},
		}},
		{"range_topk", query.Query{
			Fields: []string{"package", "rating", "downloads"},
			Filters: []query.Filter{
				{Field: "rating", Op: query.OpGe, Value: 4.5},
			},
			Sort:  []query.SortKey{{Field: "downloads", Desc: true}, {Field: "package"}},
			Limit: 10,
		}},
		{"residual_contains", query.Query{
			Fields: []string{"package", "market"},
			Filters: []query.Filter{
				{Field: "package", Op: query.OpContains, Value: ".game."},
			},
			Limit: 10,
		}},
	}
}

// scanSpeedup measures planner vs oracle per-scan time with interleaved
// rounds — scheduler or GC noise hits both paths instead of biasing one —
// and returns each path's fastest round, the noise-resistant estimate the
// speedup assertion uses.
func scanSpeedup(planner, oracle func(), rounds, plannerIters, oracleIters int) (plannerTime, oracleTime time.Duration) {
	runtime.GC()
	plannerTime, oracleTime = time.Duration(math.MaxInt64), time.Duration(math.MaxInt64)
	timeScans := func(scan func(), iters int) time.Duration {
		start := time.Now()
		for i := 0; i < iters; i++ {
			scan()
		}
		return time.Since(start) / time.Duration(iters)
	}
	for r := 0; r < rounds; r++ {
		if d := timeScans(planner, plannerIters); d < plannerTime {
			plannerTime = d
		}
		if d := timeScans(oracle, oracleIters); d < oracleTime {
			oracleTime = d
		}
	}
	return plannerTime, oracleTime
}

// BenchmarkScanQuery measures the query engine over the enriched 400-app
// synth corpus, planner vs oracle, across the query shapes above. Before
// timing, it asserts the contract the perf work rests on — planner rows
// byte-identical to the oracle, the index actually pruning candidates, a
// >= 5x ns/op win and fewer allocations on the selective acceptance query —
// so the CI bench-smoke artifact records a verified trajectory, the same
// way BenchmarkDetectCodeClones asserts ComparedPairs.
func BenchmarkScanQuery(b *testing.B) {
	ds := benchScanDataset(b)
	src := ds.QuerySource()
	oracle, ok := src.(query.OracleSource)
	if !ok {
		b.Fatalf("query source %T does not retain the oracle scan", src)
	}
	cases := scanBenchQueries()

	// Equivalence gate: every bench query, both paths, identical rows.
	for _, tc := range cases {
		planned, err := src.Scan(tc.q)
		if err != nil {
			b.Fatalf("%s: planned scan: %v", tc.name, err)
		}
		reference, err := oracle.ScanOracle(tc.q)
		if err != nil {
			b.Fatalf("%s: oracle scan: %v", tc.name, err)
		}
		pj, _ := json.Marshal(planned.Rows)
		oj, _ := json.Marshal(reference.Rows)
		if !bytes.Equal(pj, oj) || planned.Meta.TotalMatched != reference.Meta.TotalMatched {
			b.Fatalf("%s: planner diverged from the oracle:\nplanned %s\noracle  %s", tc.name, pj, oj)
		}
	}

	// Perf gate on the acceptance query: the planner must prune candidates
	// via the indexes and beat the oracle by >= 5x with fewer allocations.
	sel := cases[0].q
	res, err := src.Scan(sel)
	if err != nil {
		b.Fatal(err)
	}
	ex := res.Meta.Explain
	n := ds.NumListings()
	if ex == nil || ex.IndexUsed == "" || ex.Candidates >= n {
		b.Fatalf("selective query did not use an index: explain %+v over %d listings", ex, n)
	}
	plannerTime, oracleTime := scanSpeedup(
		func() { _, _ = src.Scan(sel) },
		func() { _, _ = oracle.ScanOracle(sel) },
		8, 150, 30)
	speedup := float64(oracleTime) / float64(plannerTime)
	if speedup < 5 {
		b.Fatalf("planner speedup %.1fx < 5x (planner %v, oracle %v)", speedup, plannerTime, oracleTime)
	}
	plannerAllocs := testing.AllocsPerRun(20, func() { _, _ = src.Scan(sel) })
	oracleAllocs := testing.AllocsPerRun(20, func() { _, _ = oracle.ScanOracle(sel) })
	if plannerAllocs >= oracleAllocs {
		b.Fatalf("planner allocs/op %.0f >= oracle %.0f", plannerAllocs, oracleAllocs)
	}
	printOnce("scan-plan", fmt.Sprintf(
		"SCANSTAT rows=%d candidates=%d residual_scanned=%d prune_ratio=%.2f speedup=%.1f planner_allocs=%.0f oracle_allocs=%.0f index=%s",
		n, ex.Candidates, ex.ResidualScanned, float64(n)/float64(maxInt(ex.Candidates, 1)),
		speedup, plannerAllocs, oracleAllocs, ex.IndexUsed))

	for _, tc := range cases {
		b.Run(tc.name+"/planner", func(b *testing.B) {
			b.ReportAllocs()
			var last *query.Result
			for i := 0; i < b.N; i++ {
				var err error
				last, err = src.Scan(tc.q)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if tc.name == "selective" {
				printOnce("scan", report.ScanTable("Scan: flagged apps on Chinese markets", last))
			}
		})
		b.Run(tc.name+"/oracle", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := oracle.ScanOracle(tc.q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScanFilterOnly isolates the match stage through the count-only
// path programmatic consumers use: Dataset.CountMatching, a selective
// filter with no materialized rows.
func BenchmarkScanFilterOnly(b *testing.B) {
	r := benchFixture(b)
	flagged := query.Filter{Field: "av_positives", Op: query.OpGe, Value: 10}
	b.ReportAllocs()
	b.ResetTimer()
	matched := 0
	for i := 0; i < b.N; i++ {
		var err error
		matched, err = r.Dataset.CountMatching(flagged)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printOnce("scan-count", fmt.Sprintf("count-only scan: %d listings with AV-rank >= 10", matched))
}

// BenchmarkAblation_CloneThreshold sweeps the WuKong vector-distance
// threshold around the paper's 0.05 and reports the resulting code-clone
// share (DESIGN.md ablation #2).
func BenchmarkAblation_CloneThreshold(b *testing.B) {
	r := benchFixture(b)
	thresholds := []float64{0.01, 0.05, 0.10, 0.20}
	for _, th := range thresholds {
		b.Run(fmt.Sprintf("threshold_%.2f", th), func(b *testing.B) {
			b.ReportAllocs()
			var points []analysis.CloneThresholdPoint
			for i := 0; i < b.N; i++ {
				points = analysis.CloneThresholdSweep(r.Dataset, []float64{th})
			}
			b.StopTimer()
			p := points[0]
			printOnce(fmt.Sprintf("ablation-clone-threshold-%.2f", th),
				fmt.Sprintf("distance threshold %.2f -> average code-clone share %.2f%% (%d pairs, %d candidates)",
					p.Threshold, 100*p.AvgCodeCloneShare, p.Pairs, p.CandidatePairs))
		})
	}
}

// BenchmarkAblation_LibraryFiltering compares clone detection with and
// without third-party library filtering (DESIGN.md ablation #1).
func BenchmarkAblation_LibraryFiltering(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	var cmp analysis.LibraryFilteringComparison
	for i := 0; i < b.N; i++ {
		cmp = analysis.CompareLibraryFiltering(r.Dataset)
	}
	b.StopTimer()
	printOnce("ablation-library-filtering",
		fmt.Sprintf("with filtering: %.2f%% code clones (%d candidates); without: %.2f%% (%d candidates)",
			100*cmp.WithFiltering.AvgCodeCloneShare, cmp.WithFiltering.CandidatePairs,
			100*cmp.WithoutFiltering.AvgCodeCloneShare, cmp.WithoutFiltering.CandidatePairs))
}

// BenchmarkAblation_AVRankThreshold sweeps the AV-rank cut-off used to call a
// sample malware (DESIGN.md ablation #3).
func BenchmarkAblation_AVRankThreshold(b *testing.B) {
	r := benchFixture(b)
	b.ReportAllocs()
	var points []analysis.AVRankPoint
	for i := 0; i < b.N; i++ {
		points = analysis.AVRankSweep(r.Dataset, []int{1, 5, 10, 20, 30})
	}
	b.StopTimer()
	for _, p := range points {
		printOnce(fmt.Sprintf("ablation-avrank-%d", p.Threshold),
			fmt.Sprintf("AV-rank >= %d -> Google Play %.2f%% vs Chinese average %.2f%% (gap %.1fx)",
				p.Threshold, 100*p.GooglePlayShare, 100*p.ChineseAvgShare, p.Gap))
	}
}

// BenchmarkAblation_ParallelSearch compares the crawler with and without the
// cross-market parallel-search strategy on a small HTTP ecosystem and reports
// the cross-market coverage each achieves (DESIGN.md ablation #4).
func BenchmarkAblation_ParallelSearch(b *testing.B) {
	cfg := synth.SmallConfig()
	cfg.NumApps = 120
	cfg.NumDevelopers = 50
	cfg.Markets = []string{market.GooglePlay, "Baidu Market", "Huawei Market", "25PP", "Tencent Myapp"}
	eco, err := synth.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	stores, err := eco.Populate()
	if err != nil {
		b.Fatal(err)
	}
	var endpoints []crawler.Endpoint
	names := make([]string, 0, len(stores))
	for name := range stores {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		srv := &http.Server{Handler: market.NewServer(stores[name])}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		endpoints = append(endpoints, crawler.Endpoint{Name: name, BaseURL: "http://" + ln.Addr().String()})
	}
	apps := append([]*synth.App(nil), eco.Apps...)
	sort.Slice(apps, func(i, j int) bool { return apps[i].BaseDownloads > apps[j].BaseDownloads })
	var seeds []string
	for i := 0; i < 20 && i < len(apps); i++ {
		seeds = append(seeds, apps[i].Package)
	}

	for _, parallel := range []bool{true, false} {
		name := "with_parallel_search"
		if !parallel {
			name = "without_parallel_search"
		}
		b.Run(name, func(b *testing.B) {
			var records int
			for i := 0; i < b.N; i++ {
				c, err := crawler.New(crawler.Config{
					Endpoints:      endpoints,
					Seeds:          seeds,
					Concurrency:    8,
					ParallelSearch: parallel,
				})
				if err != nil {
					b.Fatal(err)
				}
				snap, err := c.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				records = snap.NumRecords()
			}
			b.StopTimer()
			printOnce("ablation-parallel-search-"+name,
				fmt.Sprintf("parallel search %v -> %d (market, package) records harvested", parallel, records))
		})
	}
}

var (
	pipelineSnapOnce sync.Once
	pipelineSnap     *crawler.Snapshot
	pipelineSnapErr  error
)

// pipelineSnapshot builds the synth corpus the pipeline benches share: large
// enough that the enrichment pool has real work per listing, small enough to
// run as a CI smoke bench with -benchtime 1x.
func pipelineSnapshot(b *testing.B) *crawler.Snapshot {
	b.Helper()
	pipelineSnapOnce.Do(func() {
		cfg := synth.SmallConfig()
		cfg.NumApps = 400
		cfg.NumDevelopers = 150
		eco, err := synth.Generate(cfg)
		if err != nil {
			pipelineSnapErr = err
			return
		}
		stores, err := eco.Populate()
		if err != nil {
			pipelineSnapErr = err
			return
		}
		pipelineSnap, pipelineSnapErr = crawler.SnapshotFromStores(stores, true, cfg.CrawlDate)
	})
	if pipelineSnapErr != nil {
		b.Fatalf("pipeline snapshot: %v", pipelineSnapErr)
	}
	return pipelineSnap
}

// benchWorkerCounts are the pool sizes the pipeline benches sweep: the serial
// oracle, a fixed mid-size pool and one worker per CPU.
func benchWorkerCounts() []int {
	counts := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// BenchmarkBuildDataset measures the parse stage (apk.Parse over every
// harvested archive) at several worker-pool sizes; workers=1 is the serial
// reference path.
func BenchmarkBuildDataset(b *testing.B) {
	snap := pipelineSnapshot(b)
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := analysis.BuildDatasetWith(snap, analysis.BuildOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

var (
	scanDatasetOnce sync.Once
	scanDataset     *analysis.Dataset
	scanDatasetErr  error
)

// benchScanDataset parses and enriches the shared 400-app synth snapshot
// once: the corpus behind the scan-engine benches and (via CloneInstances)
// the clone-detection benches.
func benchScanDataset(b *testing.B) *analysis.Dataset {
	b.Helper()
	scanDatasetOnce.Do(func() {
		snap := pipelineSnapshot(b)
		ds, err := analysis.BuildDatasetWith(snap, analysis.BuildOptions{})
		if err != nil {
			scanDatasetErr = err
			return
		}
		ds.Enrich(analysis.DefaultEnrichOptions())
		scanDataset = ds
	})
	if scanDatasetErr != nil {
		b.Fatalf("scan bench dataset: %v", scanDatasetErr)
	}
	return scanDataset
}

var (
	cloneCorpusOnce sync.Once
	cloneCorpus     []*clonedetect.AppInstance
)

// cloneBenchCorpus converts the shared enriched 400-app dataset into the
// clone detector's input instances, so the clone benches time detection
// alone.
func cloneBenchCorpus(b *testing.B) []*clonedetect.AppInstance {
	b.Helper()
	ds := benchScanDataset(b)
	cloneCorpusOnce.Do(func() { cloneCorpus = ds.CloneInstances(true) })
	return cloneCorpus
}

// BenchmarkDetectCodeClones measures the two-phase code-clone detector over
// the 400-app synth corpus at several worker counts. workers_1 is the serial
// oracle (the pre-index sort-by-total sweep); every other sub-bench runs the
// candidate-indexed detector, which must emit the identical clone set while
// performing strictly fewer vector comparisons — both properties are asserted
// here so the bench-smoke CI artifact records them on every PR.
func BenchmarkDetectCodeClones(b *testing.B) {
	instances := cloneBenchCorpus(b)
	cfg := clonedetect.DefaultCodeConfig()

	oracle := clonedetect.DetectCodeClonesWith(instances, cfg, clonedetect.CloneOptions{Workers: 1})
	indexed := clonedetect.DetectCodeClonesWith(instances, cfg, clonedetect.CloneOptions{})
	if indexed.ComparedPairs >= oracle.ComparedPairs {
		b.Fatalf("candidate index did not prune: %d comparisons vs %d pre-index",
			indexed.ComparedPairs, oracle.ComparedPairs)
	}
	if len(indexed.Pairs) != len(oracle.Pairs) || indexed.CandidatePairs != oracle.CandidatePairs {
		b.Fatalf("indexed detector diverged from the oracle: %d/%d pairs, %d/%d candidates",
			len(indexed.Pairs), len(oracle.Pairs), indexed.CandidatePairs, oracle.CandidatePairs)
	}
	printOnce("clone-index", fmt.Sprintf(
		"code-clone candidate index over %d instances: %d vector comparisons vs %d pre-index blocking (%.1fx reduction), %d candidates, %d confirmed clones",
		len(instances), indexed.ComparedPairs, oracle.ComparedPairs,
		float64(oracle.ComparedPairs)/float64(maxInt(indexed.ComparedPairs, 1)),
		indexed.CandidatePairs, len(indexed.Pairs)))

	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				clonedetect.DetectCodeClonesWith(instances, cfg, clonedetect.CloneOptions{Workers: workers})
			}
		})
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BenchmarkEnrich measures the full enrichment pipeline (feature-DB learning,
// library detection, AV scan, permission analysis) at several worker-pool
// sizes. Enrichment runs once per dataset, so each iteration rebuilds the
// dataset outside the timer; workers=1 is the serial oracle the equivalence
// tests compare against.
func BenchmarkEnrich(b *testing.B) {
	snap := pipelineSnapshot(b)
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			opts := analysis.DefaultEnrichOptions()
			opts.Workers = workers
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ds, err := analysis.BuildDatasetWith(snap, analysis.BuildOptions{})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				ds.Enrich(opts)
			}
		})
	}
}

// aggBenchRequests are the aggregation shapes BenchmarkAggregate sweeps: the
// Table 4 shape (market groups with conditional threshold counts), the
// Figure 1 shape (market × category counts), the Table 1 developer shape
// (distinct counts per market) and a global distinct.
func aggBenchRequests() []struct {
	name string
	a    query.Aggregate
} {
	return []struct {
		name string
		a    query.Aggregate
	}{
		{"malware_thresholds", query.Aggregate{
			GroupBy: []string{"market"},
			Filters: []query.Filter{{Field: "av_positives", Op: query.OpIsNull, Value: false}},
			Aggregates: []query.AggSpec{
				{Op: query.AggCount, As: "parsed"},
				{Op: query.AggCount, As: "c10",
					Where: []query.Filter{{Field: "av_positives", Op: query.OpGe, Value: 10}}},
				{Op: query.AggShare},
			},
		}},
		{"market_category", query.Aggregate{
			GroupBy:    []string{"market", "category"},
			Aggregates: []query.AggSpec{{Op: query.AggCount}},
		}},
		{"developers", query.Aggregate{
			GroupBy: []string{"market"},
			Aggregates: []query.AggSpec{
				{Op: query.AggDistinct, Field: "developer_id", As: "developers"},
				{Op: query.AggSum, Field: "download_floor", As: "downloads"},
				{Op: query.AggMean, Field: "library_count", As: "avg_libs"},
			},
		}},
		{"global_topk", query.Aggregate{
			Aggregates: []query.AggSpec{
				{Op: query.AggDistinct, Field: "developer_id"},
				{Op: query.AggTopK, Field: "av_family", K: 5},
			},
		}},
	}
}

// BenchmarkAggregate measures the grouped-aggregation engine over the
// enriched 400-app corpus, columnar vs oracle, asserting byte-identical
// groups before any timing is recorded (the same equivalence-then-measure
// pattern as BenchmarkScanQuery).
func BenchmarkAggregate(b *testing.B) {
	ds := benchScanDataset(b)
	src, ok := ds.QuerySource().(query.AggregateOracleSource)
	if !ok {
		b.Fatalf("query source %T does not retain the aggregation oracle", ds.QuerySource())
	}
	cases := aggBenchRequests()
	for _, tc := range cases {
		planned, err := src.Aggregate(tc.a)
		if err != nil {
			b.Fatalf("%s: aggregate: %v", tc.name, err)
		}
		reference, err := src.AggregateOracle(tc.a)
		if err != nil {
			b.Fatalf("%s: oracle: %v", tc.name, err)
		}
		pj, _ := json.Marshal(planned.Rows)
		oj, _ := json.Marshal(reference.Rows)
		if !bytes.Equal(pj, oj) || planned.Meta.TotalMatched != reference.Meta.TotalMatched {
			b.Fatalf("%s: columnar aggregation diverged from the oracle:\ncolumnar %s\noracle   %s", tc.name, pj, oj)
		}
	}
	for _, tc := range cases {
		b.Run(tc.name+"/columnar", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := src.Aggregate(tc.a); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(tc.name+"/oracle", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := src.AggregateOracle(tc.a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

var (
	analysesFixtureOnce sync.Once
	analysesFixture     *core.Results
	analysesFixtureErr  error
)

// benchAnalysesResults runs one full 400-app study (the scheduler benches
// re-run only the analysis stage on its pipeline outputs).
func benchAnalysesResults(b *testing.B) *core.Results {
	b.Helper()
	analysesFixtureOnce.Do(func() {
		cfg := core.DefaultConfig()
		cfg.Synth = synth.SmallConfig()
		cfg.Synth.NumApps = 400
		cfg.Synth.NumDevelopers = 150
		analysesFixture, analysesFixtureErr = core.Run(context.Background(), cfg)
	})
	if analysesFixtureErr != nil {
		b.Fatalf("analyses fixture: %v", analysesFixtureErr)
	}
	return analysesFixture
}

// analysesShell clones only the pipeline outputs of a Results so each
// (re)computation starts from blank analysis fields.
func analysesShell(r *core.Results) *core.Results {
	return &core.Results{
		Config:      r.Config,
		Ecosystem:   r.Ecosystem,
		FirstCrawl:  r.FirstCrawl,
		SecondCrawl: r.SecondCrawl,
		Dataset:     r.Dataset,
	}
}

// benchAnalysesJSON snapshots the analysis fields for byte-identity checks.
func benchAnalysesJSON(b *testing.B, r *core.Results) []byte {
	b.Helper()
	j, err := json.Marshal(struct {
		Overview, Totals, Concentration, Categories, Downloads, APILevelsGP,
		APILevelsCN, ReleaseGP, ReleaseCN, LibraryUsage, TopLibsGP, TopLibsCN,
		AdEcoGP, AdEcoCN, Ratings, Publishing, StoreOverlap, Clusters,
		Outdated, Identical, Misbehavior, OverPrivGP, OverPrivCN, Malware,
		MalwareAvg, TopMalware, FamiliesGP, FamiliesCN, Repackaged, Removal,
		StillHosted, Radar any
	}{
		r.Overview, r.Totals, r.Concentration, r.Categories, r.Downloads,
		r.APILevelsGP, r.APILevelsCN, r.ReleaseGP, r.ReleaseCN,
		r.LibraryUsage, r.TopLibsGP, r.TopLibsCN, r.AdEcoGP, r.AdEcoCN,
		r.Ratings, r.Publishing, r.StoreOverlap, r.Clusters, r.Outdated,
		r.Identical, r.Misbehavior, r.OverPrivGP, r.OverPrivCN, r.Malware,
		r.MalwareAvg, r.TopMalware, r.FamiliesGP, r.FamiliesCN,
		r.Repackaged, r.Removal, r.StillHosted, r.Radar,
	})
	if err != nil {
		b.Fatalf("marshal analyses: %v", err)
	}
	return j
}

// BenchmarkRunAnalyses measures the full table/figure suite over the 400-app
// corpus: the scheduled columnar suite (the analysis scheduler over the
// aggregation-rewritten bodies) against the serial-oracle suite (the
// pre-scheduler order over the row-at-a-time bodies and the serial clone
// sweep). Before timing it asserts the scheduled suite is byte-identical to
// Workers:1, and on multi-core hosts that the scheduled suite beats the
// serial-oracle suite by >= 3x — the contract the bench-smoke artifact
// records on every PR.
func BenchmarkRunAnalyses(b *testing.B) {
	base := benchAnalysesResults(b)

	serial := analysesShell(base)
	serial.ComputeAnalyses(1)
	want := benchAnalysesJSON(b, serial)
	scheduled := analysesShell(base)
	scheduled.ComputeAnalyses(0)
	if !bytes.Equal(benchAnalysesJSON(b, scheduled), want) {
		b.Fatal("scheduled analyses diverge from Workers:1")
	}

	oracleRun := analysesShell(base)
	scheduledRun := analysesShell(base)
	scheduledTime, oracleTime := scanSpeedup(
		func() { scheduledRun.ComputeAnalyses(0) },
		func() { oracleRun.ComputeAnalysesOracle() },
		2, 1, 1)
	speedup := float64(oracleTime) / float64(scheduledTime)
	workers := runtime.GOMAXPROCS(0)
	if workers >= 4 && speedup < 3 {
		b.Fatalf("scheduled+columnar suite speedup %.1fx < 3x on %d CPUs (scheduled %v, serial oracle %v)",
			speedup, workers, scheduledTime, oracleTime)
	}
	printOnce("analyses-sched", fmt.Sprintf(
		"ANALYSESSTAT tasks=%d workers=%d serial_oracle_ns=%d scheduled_ns=%d speedup=%.2f identical=1",
		core.NumAnalysisTasks(), workers, oracleTime.Nanoseconds(), scheduledTime.Nanoseconds(), speedup))

	b.Run("serial_oracle", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			analysesShell(base).ComputeAnalysesOracle()
		}
	})
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("scheduled_workers_%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				analysesShell(base).ComputeAnalyses(workers)
			}
		})
	}
}
