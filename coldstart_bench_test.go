// BenchmarkColdStart measures what the durable layer's snapshots buy at
// startup on the 100k scaled corpus: time-to-first-query of a durable store
// recovering from a checksummed snapshot (binary decode + InstallQueryColumns
// + empty WAL tail) against the cold pipeline it replaces (crawler JSON
// snapshot load + BuildDatasetFromRecords + Enrich + column export), with a
// WAL-only rebuild timed alongside to show snapshots are pure optimization —
// recovery works without them, just slower. Before any timing the recovered
// engine is asserted identical to the cold build on the scale bench query
// shapes (the equivalence-then-measure pattern of the other benches), and
// the COLDSTAT line feeds the CI bench artifact BENCH_coldstart.json.
package marketscope_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"marketscope/internal/analysis"
	"marketscope/internal/appmeta"
	"marketscope/internal/crawler"
	"marketscope/internal/durable"
	"marketscope/internal/ingest"
	"marketscope/internal/query"
	"marketscope/internal/synth"
)

// coldstartRecords streams the scaled corpus and deduplicates keep-first by
// (market, package) — the ingestor keeps the first listing of a key and the
// crawler snapshot keeps the last, so feeding both the deduplicated stream
// makes the two pipelines land byte-identical state.
func coldstartRecords(b *testing.B, rows int) []appmeta.Record {
	b.Helper()
	seen := map[appmeta.Key]bool{}
	var out []appmeta.Record
	err := synth.StreamListings(synth.ScaleConfig{Seed: scaledSeed, Rows: rows}, func(i int, rec appmeta.Record) error {
		if k := rec.Key(); !seen[k] {
			seen[k] = true
			out = append(out, rec)
		}
		return nil
	})
	if err != nil {
		b.Fatalf("stream corpus: %v", err)
	}
	return out
}

func BenchmarkColdStart(b *testing.B) {
	rows := scaledRowsTarget()
	records := coldstartRecords(b, rows)
	crawlTime := records[len(records)-1].UpdateDate

	// Seed the two on-disk representations once: a crawler JSON snapshot dir
	// (the cold pipeline's input) and a durable data dir holding the same
	// records as one WAL'd delta plus one column-store snapshot.
	jsonDir := filepath.Join(b.TempDir(), "snapshot")
	snap := crawler.NewSnapshot(crawlTime)
	listings := make([]ingest.Listing, 0, len(records))
	for _, rec := range records {
		if err := snap.AddRecord(rec); err != nil {
			b.Fatalf("seed record: %v", err)
		}
		listings = append(listings, ingest.Listing{Record: rec})
	}
	if err := snap.Save(jsonDir); err != nil {
		b.Fatalf("save crawler snapshot: %v", err)
	}

	dataDir := filepath.Join(b.TempDir(), "data")
	openOpts := func(dir string) durable.Options {
		return durable.Options{
			Dir:   dir,
			Fsync: durable.FsyncOff, // startup cost is what's measured, not append latency
			Ingest: ingest.Options{
				Enrich:    analysis.DefaultEnrichOptions(),
				CrawlTime: crawlTime,
			},
		}
	}
	seedStore, err := durable.Open(openOpts(dataDir))
	if err != nil {
		b.Fatalf("open durable store: %v", err)
	}
	if res, err := seedStore.Apply(ingest.Delta{Seq: 0, Listings: listings}); err != nil || !res.Applied {
		b.Fatalf("seed apply: %+v (err %v)", res, err)
	}
	if err := seedStore.WriteSnapshot(); err != nil {
		b.Fatalf("seed snapshot: %v", err)
	}
	if err := seedStore.Close(); err != nil {
		b.Fatalf("close seed store: %v", err)
	}

	// A second data dir holding only the WAL: the same recovery with the
	// snapshot ladder exhausted, isolating what snapshots save over a full
	// replay through the ingest pipeline.
	walDir := filepath.Join(b.TempDir(), "walonly")
	copyWALOnly(b, dataDir, walDir)

	probes := scaleBenchQueries(rows)
	numRecords := len(records)
	listings, records = nil, nil // seeding residue must not inflate the timed regions' GC work

	// Both restart paths are timed as the best of a few one-shot samples, each
	// starting from a lean heap: the previous sample's dataset is released and
	// a GC forced before the clock starts, so the collector marks only the
	// sample's own allocations — what a real restart process's heap looks
	// like. Without that, a single wall sample in a process pinning a freshly
	// built 80k-row dataset is dominated by collector noise (observed ±30% run
	// to run); the minimum over samples is the standard estimator for
	// repeatable CPU-bound work. The files were just written, so every sample
	// sees a warm page cache — exactly what a real restart sees. A sampling
	// round covers both paths; when a background-load burst spans a whole
	// round and drags the ratio under the gate, one more round runs and the
	// minima accumulate — both sides get the same extra chances, so the retry
	// absorbs machine noise without biasing the comparison.
	const coldSamples, snapSamples, maxRounds = 3, 4, 2

	var coldLoad, coldDur, snapDur time.Duration
	coldListings := -1
	for round := 0; round < maxRounds; round++ {
		// The cold pipeline, timed end to end: JSON decode, dataset build,
		// enrichment, column export (QuerySource), first scan.
		var cold *analysis.Dataset
		var coldSrc query.Source
		for i := 0; i < coldSamples; i++ {
			cold, coldSrc = nil, nil
			runtime.GC()
			coldStart := time.Now()
			loaded, err := crawler.Load(jsonDir)
			if err != nil {
				b.Fatalf("load crawler snapshot: %v", err)
			}
			load := time.Since(coldStart)
			ds, err := analysis.BuildDatasetFromRecords(loaded.CrawlTime, loaded.Records(), loaded.APK, analysis.BuildOptions{})
			if err != nil {
				b.Fatalf("cold build: %v", err)
			}
			ds.Enrich(analysis.DefaultEnrichOptions())
			src := ds.QuerySource()
			if _, err := src.Scan(probes[0].q); err != nil {
				b.Fatalf("cold probe: %v", err)
			}
			if total := time.Since(coldStart); coldDur == 0 || total < coldDur {
				coldDur, coldLoad = total, load
			}
			cold, coldSrc = ds, src
		}

		// Equivalence gate before believing any number: the recovered engine
		// must answer the scale bench shapes — plus a row-order-sensitive dump
		// — byte-identically to the cold build. Checked once, on an untimed
		// recovery, so the cold dataset can be released before the snapshot
		// timing below.
		if coldListings < 0 {
			eq, err := durable.Open(openOpts(dataDir))
			if err != nil {
				b.Fatalf("equivalence open: %v", err)
			}
			eqSrc := eq.Dataset().QuerySource()
			dump := query.Query{Fields: []string{"market", "package", "downloads"}, Limit: 2000}
			for _, probe := range append(probes, struct {
				name string
				q    query.Query
			}{"dump", dump}) {
				sres, serr := eqSrc.Scan(probe.q)
				cres, cerr := coldSrc.Scan(probe.q)
				sj := ingestCanonical(b, sres, serr)
				cj := ingestCanonical(b, cres, cerr)
				if !bytes.Equal(sj, cj) {
					b.Fatalf("%s: recovered engine diverged from the cold build:\nsnap %.300s\ncold %.300s", probe.name, sj, cj)
				}
			}
			coldListings = cold.NumListings()
			if err := eq.Close(); err != nil {
				b.Fatalf("close equivalence store: %v", err)
			}
		}
		cold, coldSrc = nil, nil

		// Snapshot recovery, timed the same way: Open (snapshot decode,
		// restore, column install, empty WAL tail) plus the first scan.
		for i := 0; i < snapSamples; i++ {
			runtime.GC()
			snapStart := time.Now()
			si, err := durable.Open(openOpts(dataDir))
			if err != nil {
				b.Fatalf("snapshot open: %v", err)
			}
			if _, err := si.Dataset().QuerySource().Scan(probes[0].q); err != nil {
				b.Fatalf("snapshot probe: %v", err)
			}
			if d := time.Since(snapStart); snapDur == 0 || d < snapDur {
				snapDur = d
			}
			if got := si.Metrics().WALRecordsReplayed.Load(); got != 0 {
				b.Fatalf("snapshot open replayed %d WAL records, want 0", got)
			}
			if err := si.Close(); err != nil {
				b.Fatalf("close: %v", err)
			}
		}
		if float64(coldDur) >= 5*float64(snapDur) {
			break
		}
	}

	// WAL-only rebuild: same contract, no snapshot to lean on.
	runtime.GC()
	walStart := time.Now()
	w, err := durable.Open(openOpts(walDir))
	if err != nil {
		b.Fatalf("wal-only open: %v", err)
	}
	if _, err := w.Dataset().QuerySource().Scan(probes[0].q); err != nil {
		b.Fatalf("wal-only probe: %v", err)
	}
	walDur := time.Since(walStart)
	if got := w.Metrics().WALRecordsReplayed.Load(); got != 1 {
		b.Fatalf("wal-only open replayed %d records, want 1", got)
	}
	if w.Cursor() != 1 || w.Dataset().NumListings() != coldListings {
		b.Fatalf("wal-only state: cursor %d, %d listings (cold has %d)", w.Cursor(), w.Dataset().NumListings(), coldListings)
	}
	if err := w.Close(); err != nil {
		b.Fatalf("close wal-only: %v", err)
	}

	speedup := float64(coldDur) / float64(snapDur)
	printOnce("coldstart", fmt.Sprintf(
		"COLDSTAT rows=%d records=%d cold_load_ms=%.1f cold_total_ms=%.1f snap_open_ms=%.1f wal_replay_ms=%.1f speedup=%.1f wal_records_replayed=0 identical=1",
		rows, numRecords,
		float64(coldLoad.Microseconds())/1000, float64(coldDur.Microseconds())/1000,
		float64(snapDur.Microseconds())/1000, float64(walDur.Microseconds())/1000,
		speedup))
	if speedup < 5 {
		b.Fatalf("snapshot recovery only %.1fx faster than the cold pipeline (%v vs %v), want >= 5x",
			speedup, snapDur, coldDur)
	}

	// The timed loop: one snapshot recovery to first query per iteration.
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := durable.Open(openOpts(dataDir))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Dataset().QuerySource().Scan(probes[0].q); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// copyWALOnly seeds dst with src's WAL and nothing else.
func copyWALOnly(b *testing.B, src, dst string) {
	b.Helper()
	blob, err := os.ReadFile(filepath.Join(src, "wal.log"))
	if err != nil {
		b.Fatalf("read wal: %v", err)
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dst, "wal.log"), blob, 0o644); err != nil {
		b.Fatalf("copy wal: %v", err)
	}
}
