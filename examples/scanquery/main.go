// Scanquery: the dataset query engine end to end — generate a corpus, crawl
// it, enrich it, then run one GraphQL-style query three ways: through the Go
// API, over the market server's POST /api/scan endpoint, and rendered as a
// report table (what the scan command prints), followed by one grouped
// aggregation through the Go API and POST /api/aggregate. Each pair of
// paths must return identical rows; the example verifies that rather than
// just claiming it.
//
//	go run ./examples/scanquery
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"marketscope/internal/analysis"
	"marketscope/internal/crawler"
	"marketscope/internal/market"
	"marketscope/internal/query"
	"marketscope/internal/report"
	"marketscope/internal/synth"
)

func main() {
	if err := runExample(); err != nil {
		log.Fatal(err)
	}
}

func runExample() error {
	// 1. Corpus: generate, publish, crawl, parse, enrich.
	cfg := synth.SmallConfig()
	eco, err := synth.Generate(cfg)
	if err != nil {
		return err
	}
	stores, err := eco.Populate()
	if err != nil {
		return err
	}
	snap, err := crawler.SnapshotFromStores(stores, true, cfg.CrawlDate)
	if err != nil {
		return err
	}
	ds, err := analysis.BuildDataset(snap)
	if err != nil {
		return err
	}
	ds.Enrich(analysis.DefaultEnrichOptions())
	src := ds.QuerySource()
	fmt.Printf("dataset: %d listings, %d scannable fields\n\n", ds.NumListings(), len(src.Fields()))

	// The query: flagged apps on Chinese markets, worst AV-rank first.
	q := query.Query{
		Fields: []string{"package", "market", "av_positives", "av_family", "downloads"},
		Filters: []query.Filter{
			{Field: "market_chinese", Op: query.OpEq, Value: true},
			{Field: "av_positives", Op: query.OpGe, Value: 10},
		},
		Sort:  []query.SortKey{{Field: "av_positives", Desc: true}, {Field: "package"}},
		Limit: 8,
	}

	// 2. Go API.
	direct, err := src.Scan(q)
	if err != nil {
		return err
	}

	// 3. HTTP: mount the engine on a market server and POST the same query.
	var store *market.Store
	for _, s := range stores {
		if s.Profile().RateLimitPerSecond == 0 {
			store = s
			break
		}
	}
	srv := market.NewServer(store)
	srv.AttachScan(src)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body, err := json.Marshal(q)
	if err != nil {
		return err
	}
	resp, err := http.Post(ts.URL+market.ScanPath, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var remote query.Result
	if err := json.NewDecoder(resp.Body).Decode(&remote); err != nil {
		return err
	}

	directRows, err := json.Marshal(direct.Rows)
	if err != nil {
		return err
	}
	remoteRows, err := json.Marshal(remote.Rows)
	if err != nil {
		return err
	}
	if !bytes.Equal(directRows, remoteRows) {
		return fmt.Errorf("HTTP and Go API rows diverge:\nhttp: %s\ngo:   %s", remoteRows, directRows)
	}
	fmt.Printf("Go API and POST %s agree: %d rows (of %d matched)\n\n",
		market.ScanPath, remote.Meta.Returned, remote.Meta.TotalMatched)

	// 4. Report table, as the scan command renders it.
	fmt.Print(report.ScanTable("Flagged apps on Chinese markets (AV-rank >= 10)", direct))

	// 5. Grouped aggregation: Table 4's shape — per-market scanned counts
	// with a conditional flagged count — through the Go API and over POST
	// /api/aggregate, again verified identical.
	agg := query.Aggregate{
		GroupBy: []string{"market"},
		Filters: []query.Filter{{Field: "av_positives", Op: query.OpIsNull, Value: false}},
		Aggregates: []query.AggSpec{
			{Op: query.AggCount, As: "scanned"},
			{Op: query.AggCount, As: "flagged",
				Where: []query.Filter{{Field: "av_positives", Op: query.OpGe, Value: 10}}},
			{Op: query.AggShare},
		},
		Sort: []query.SortKey{{Field: "flagged", Desc: true}, {Field: "market"}},
	}
	directAgg, err := ds.Aggregate(agg)
	if err != nil {
		return err
	}
	aggBody, err := json.Marshal(agg)
	if err != nil {
		return err
	}
	aggResp, err := http.Post(ts.URL+market.AggregatePath, "application/json", bytes.NewReader(aggBody))
	if err != nil {
		return err
	}
	defer aggResp.Body.Close()
	var remoteAgg query.Result
	if err := json.NewDecoder(aggResp.Body).Decode(&remoteAgg); err != nil {
		return err
	}
	// Compare over re-decoded JSON: HTTP widens every number to float64.
	var directWide [][]any
	dj, _ := json.Marshal(directAgg.Rows)
	if err := json.Unmarshal(dj, &directWide); err != nil {
		return err
	}
	directGroups, _ := json.Marshal(directWide)
	remoteGroups, err := json.Marshal(remoteAgg.Rows)
	if err != nil {
		return err
	}
	if !bytes.Equal(directGroups, remoteGroups) {
		return fmt.Errorf("HTTP and Go API groups diverge:\nhttp: %s\ngo:   %s", remoteGroups, directGroups)
	}
	fmt.Printf("\nGo API and POST %s agree: %d groups (of %d matched listings)\n\n",
		market.AggregatePath, remoteAgg.Meta.Returned, remoteAgg.Meta.TotalMatched)
	fmt.Print(report.AggregateTable("Scanned and flagged listings per market", directAgg))
	return nil
}
