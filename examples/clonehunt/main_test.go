package main

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestClonehuntSmoke runs the example against a tiny synth snapshot and
// sanity-checks the report: Table 3, the heatmap, the phase statistics and
// the index-vs-oracle comparison must all be present and coherent.
func TestClonehuntSmoke(t *testing.T) {
	cfg := huntConfig()
	cfg.NumApps = 120
	cfg.NumDevelopers = 50
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()

	for _, want := range []string{
		"ground truth:",
		"Table 3",
		"Figure 10",
		"phase statistics:",
		"candidate index:",
		"identical clone set: true",
		"ablation — code clones with library filtering:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// The phase statistics line must be internally consistent: confirmed
	// clones <= phase-1 candidates <= comparisons.
	m := regexp.MustCompile(`phase statistics: (\d+) vector comparisons after candidate indexing, (\d+) candidates passed phase 1, (\d+) confirmed clones`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("phase statistics line missing:\n%s", out)
	}
	compared, _ := strconv.Atoi(m[1])
	candidates, _ := strconv.Atoi(m[2])
	confirmed, _ := strconv.Atoi(m[3])
	if confirmed > candidates || candidates > compared {
		t.Errorf("inconsistent phase statistics: compared %d, candidates %d, confirmed %d", compared, candidates, confirmed)
	}
	if confirmed == 0 {
		t.Error("smoke corpus produced no confirmed clones; detection output is vacuous")
	}
}

func TestClonehuntRejectsInvalidConfig(t *testing.T) {
	cfg := huntConfig()
	cfg.NumApps = 0
	var buf bytes.Buffer
	if err := run(cfg, &buf); err == nil {
		t.Error("invalid config accepted")
	}
}
