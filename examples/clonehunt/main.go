// Clonehunt: a deep dive into the fake-app and cloned-app detection of
// Section 6 — generate a corpus, run the name-cluster fake heuristic, the
// signature-based clone detector and the two-phase WuKong code-clone
// detector, and print Table 3 together with the Figure 10 heatmap and a few
// concrete detections.
//
//	go run ./examples/clonehunt
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"reflect"

	"marketscope/internal/analysis"
	"marketscope/internal/clonedetect"
	"marketscope/internal/crawler"
	"marketscope/internal/report"
	"marketscope/internal/synth"
)

// huntConfig is a corpus with aggressive misbehaviour injection so there is
// plenty to find.
func huntConfig() synth.Config {
	cfg := synth.SmallConfig()
	cfg.NumApps = 350
	cfg.NumDevelopers = 120
	cfg.FakeRate = 1.5
	cfg.CloneRate = 1.8
	return cfg
}

func main() {
	if err := run(huntConfig(), os.Stdout); err != nil {
		log.Fatalf("clonehunt: %v", err)
	}
}

func run(cfg synth.Config, out io.Writer) error {
	eco, err := synth.Generate(cfg)
	if err != nil {
		return fmt.Errorf("generate: %w", err)
	}
	gt := eco.GroundTruth()
	fmt.Fprintf(out, "ground truth: %d benign, %d malware-carrying, %d fakes, %d signature clones, %d code clones\n\n",
		gt.Benign, gt.Malware, gt.Fakes, gt.SignatureClones, gt.CodeClones)

	stores, err := eco.Populate()
	if err != nil {
		return fmt.Errorf("populate: %w", err)
	}
	snap, err := crawler.SnapshotFromStores(stores, true, cfg.CrawlDate)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	dataset, err := analysis.BuildDataset(snap)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	dataset.Enrich(analysis.DefaultEnrichOptions())

	res := analysis.Misbehavior(dataset, analysis.DefaultMisbehaviorOptions())
	fmt.Fprintln(out, report.Table3(res))
	fmt.Fprintln(out, report.Figure10(res.Heatmap, dataset.MarketNames()))

	// Show a few concrete findings.
	fmt.Fprintln(out, "example fake apps (imitated name -> fake package @ market):")
	for i, f := range res.Fakes.Fakes {
		if i >= 5 {
			break
		}
		fmt.Fprintf(out, "  %q: official %s imitated by %s in %s\n", f.Name, f.Official.Package, f.Fake.Package, f.Fake.Market)
	}
	fmt.Fprintln(out, "\nexample code-based clones (original -> clone, vector distance / shared segments):")
	for i, p := range res.CodeRes.Pairs {
		if i >= 5 {
			break
		}
		fmt.Fprintf(out, "  %s (%s) -> %s (%s): distance %.3f, segments %.0f%%\n",
			p.Original.Package, p.Original.Market, p.Clone.Package, p.Clone.Market,
			p.Distance, 100*p.SegmentShare)
	}
	fmt.Fprintf(out, "\nphase statistics: %d vector comparisons after candidate indexing, %d candidates passed phase 1, %d confirmed clones\n",
		res.CodeRes.ComparedPairs, res.CodeRes.CandidatePairs, len(res.CodeRes.Pairs))

	// The serial oracle performs every comparison the blocking phase admits;
	// the candidate index prunes most of them without changing the output.
	oracleOpts := analysis.DefaultMisbehaviorOptions()
	oracle := clonedetect.DetectCodeClonesWith(
		dataset.CloneInstances(oracleOpts.FilterLibraries), oracleOpts.Code,
		clonedetect.CloneOptions{Workers: 1})
	fmt.Fprintf(out, "candidate index: %d comparisons vs %d pre-index (%.1fx reduction), identical clone set: %v\n",
		res.CodeRes.ComparedPairs, oracle.ComparedPairs,
		float64(oracle.ComparedPairs)/float64(max(res.CodeRes.ComparedPairs, 1)),
		reflect.DeepEqual(res.CodeRes.Pairs, oracle.Pairs))

	// Ablation: what happens to code-clone detection without third-party
	// library filtering (the paper's motivation for using LibRadar first).
	noFilter := analysis.DefaultMisbehaviorOptions()
	noFilter.FilterLibraries = false
	unfiltered := analysis.Misbehavior(dataset, noFilter)
	fmt.Fprintf(out, "\nablation — code clones with library filtering: %.2f%% of listings; without: %.2f%%\n",
		100*res.AvgCodeShare, 100*unfiltered.AvgCodeShare)
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
