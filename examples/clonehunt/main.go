// Clonehunt: a deep dive into the fake-app and cloned-app detection of
// Section 6 — generate a corpus, run the name-cluster fake heuristic, the
// signature-based clone detector and the two-phase WuKong code-clone
// detector, and print Table 3 together with the Figure 10 heatmap and a few
// concrete detections.
//
//	go run ./examples/clonehunt
package main

import (
	"fmt"
	"log"

	"marketscope/internal/analysis"
	"marketscope/internal/crawler"
	"marketscope/internal/report"
	"marketscope/internal/synth"
)

func main() {
	// A corpus with aggressive misbehaviour injection so there is plenty to
	// find.
	cfg := synth.SmallConfig()
	cfg.NumApps = 350
	cfg.NumDevelopers = 120
	cfg.FakeRate = 1.5
	cfg.CloneRate = 1.8
	eco, err := synth.Generate(cfg)
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	gt := eco.GroundTruth()
	fmt.Printf("ground truth: %d benign, %d malware-carrying, %d fakes, %d signature clones, %d code clones\n\n",
		gt.Benign, gt.Malware, gt.Fakes, gt.SignatureClones, gt.CodeClones)

	stores, err := eco.Populate()
	if err != nil {
		log.Fatalf("populate: %v", err)
	}
	snap, err := crawler.SnapshotFromStores(stores, true, cfg.CrawlDate)
	if err != nil {
		log.Fatalf("snapshot: %v", err)
	}
	dataset, err := analysis.BuildDataset(snap)
	if err != nil {
		log.Fatalf("dataset: %v", err)
	}
	dataset.Enrich(analysis.DefaultEnrichOptions())

	res := analysis.Misbehavior(dataset, analysis.DefaultMisbehaviorOptions())
	fmt.Println(report.Table3(res))
	fmt.Println(report.Figure10(res.Heatmap, dataset.MarketNames()))

	// Show a few concrete findings.
	fmt.Println("example fake apps (imitated name -> fake package @ market):")
	for i, f := range res.Fakes.Fakes {
		if i >= 5 {
			break
		}
		fmt.Printf("  %q: official %s imitated by %s in %s\n", f.Name, f.Official.Package, f.Fake.Package, f.Fake.Market)
	}
	fmt.Println("\nexample code-based clones (original -> clone, vector distance / shared segments):")
	for i, p := range res.CodeRes.Pairs {
		if i >= 5 {
			break
		}
		fmt.Printf("  %s (%s) -> %s (%s): distance %.3f, segments %.0f%%\n",
			p.Original.Package, p.Original.Market, p.Clone.Package, p.Clone.Market,
			p.Distance, 100*p.SegmentShare)
	}
	fmt.Printf("\nphase statistics: %d vector comparisons, %d candidates passed phase 1, %d confirmed clones\n",
		res.CodeRes.ComparedPairs, res.CodeRes.CandidatePairs, len(res.CodeRes.Pairs))

	// Ablation: what happens to code-clone detection without third-party
	// library filtering (the paper's motivation for using LibRadar first).
	noFilter := analysis.DefaultMisbehaviorOptions()
	noFilter.FilterLibraries = false
	unfiltered := analysis.Misbehavior(dataset, noFilter)
	fmt.Printf("\nablation — code clones with library filtering: %.2f%% of listings; without: %.2f%%\n",
		100*res.AvgCodeShare, 100*unfiltered.AvgCodeShare)
}
