// Crawlmarkets: serve a synthetic ecosystem of app markets over HTTP on
// loopback listeners and harvest it with the parallel-search crawler, the
// way the paper's collection campaign worked (Section 3).
//
//	go run ./examples/crawlmarkets
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"sort"
	"time"

	"marketscope/internal/appmeta"
	"marketscope/internal/crawler"
	"marketscope/internal/market"
	"marketscope/internal/synth"
)

func main() {
	// 1. Generate a modest ecosystem restricted to five markets so the
	//    output stays readable.
	cfg := synth.SmallConfig()
	cfg.NumApps = 150
	cfg.NumDevelopers = 60
	cfg.Markets = []string{
		market.GooglePlay, "Tencent Myapp", "Baidu Market", "Huawei Market", "25PP",
	}
	eco, err := synth.Generate(cfg)
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	stores, err := eco.Populate()
	if err != nil {
		log.Fatalf("populate: %v", err)
	}

	// 2. Serve each market on its own loopback listener.
	var endpoints []crawler.Endpoint
	var servers []*http.Server
	names := make([]string, 0, len(stores))
	for name := range stores {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("listen: %v", err)
		}
		srv := &http.Server{Handler: market.NewServer(stores[name])}
		go func() { _ = srv.Serve(ln) }()
		servers = append(servers, srv)
		endpoints = append(endpoints, crawler.Endpoint{Name: name, BaseURL: "http://" + ln.Addr().String()})
		fmt.Printf("serving %-16s at http://%s (%d apps, index style %s)\n",
			name, ln.Addr(), stores[name].Len(), stores[name].Profile().IndexStyle)
	}
	defer func() {
		for _, srv := range servers {
			_ = srv.Close()
		}
	}()

	// 3. Seed the BFS crawl of Google Play with the most popular packages
	//    (the stand-in for the paper's PrivacyGrade seed list).
	apps := append([]*synth.App(nil), eco.Apps...)
	sort.Slice(apps, func(i, j int) bool { return apps[i].BaseDownloads > apps[j].BaseDownloads })
	var seeds []string
	for i := 0; i < 20 && i < len(apps); i++ {
		seeds = append(seeds, apps[i].Package)
	}

	// 4. Crawl.
	c, err := crawler.New(crawler.Config{
		Endpoints:      endpoints,
		Seeds:          seeds,
		Concurrency:    8,
		FetchAPKs:      true,
		ParallelSearch: true,
	})
	if err != nil {
		log.Fatalf("crawler: %v", err)
	}
	start := time.Now()
	snap, err := c.Run(context.Background())
	if err != nil {
		log.Fatalf("crawl: %v", err)
	}
	stats := c.Stats()

	fmt.Printf("\ncrawl finished in %s\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("records: %d, APKs: %d, HTTP requests: %d, 404s: %d, errors: %d\n",
		snap.NumRecords(), snap.NumAPKs(), stats.Requests, stats.NotFound, stats.Errors)
	for _, name := range snap.Markets() {
		fmt.Printf("  %-16s %4d records harvested (store holds %d)\n",
			name, len(snap.RecordsForMarket(name)), stores[name].Len())
	}

	// 5. Show the parallel-search effect: packages observed in 2+ markets.
	multi := 0
	for _, pkg := range snap.Packages() {
		seen := 0
		for _, m := range snap.Markets() {
			if snap.Has(appmeta.Key{Market: m, Package: pkg}) {
				seen++
			}
		}
		if seen >= 2 {
			multi++
		}
	}
	fmt.Printf("packages observed in 2+ markets (parallel search): %d of %d\n", multi, len(snap.Packages()))
}
