// Quickstart: run a small end-to-end study and print a handful of the
// paper's headline comparisons.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"marketscope/internal/core"
	"marketscope/internal/market"
)

func main() {
	cfg := core.QuickConfig()
	cfg.Synth.NumApps = 400
	cfg.Synth.NumDevelopers = 150

	results, err := core.Run(context.Background(), cfg)
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}

	fmt.Printf("Generated %d apps (%d listings) across %d markets in %s.\n\n",
		len(results.Ecosystem.Apps), results.Dataset.NumListings(),
		len(results.Dataset.Markets), results.Elapsed.Round(1e6))

	// Headline comparison #1: malware prevalence (Table 4).
	var gpMalware float64
	var cnMalware = results.MalwareAvg.ShareAtLeast10
	for _, row := range results.Malware {
		if row.Market == market.GooglePlay {
			gpMalware = row.ShareAtLeast10
		}
	}
	fmt.Printf("Malware (AV-rank >= 10): Google Play %.1f%% vs Chinese markets %.1f%% on average.\n",
		100*gpMalware, 100*cnMalware)

	// Headline comparison #2: minimum API levels (Figure 3).
	fmt.Printf("Apps with min API < 9:   Google Play %.1f%% vs Chinese markets %.1f%%.\n",
		100*results.APILevelsGP.LowAPIShare, 100*results.APILevelsCN.LowAPIShare)

	// Headline comparison #3: over-privileged apps (Figure 11).
	fmt.Printf("Over-privileged apps:    Google Play %.1f%% vs Chinese markets %.1f%%.\n",
		100*results.OverPrivGP.OverPrivilegedShare, 100*results.OverPrivCN.OverPrivilegedShare)

	// Headline comparison #4: developer market split (Section 5.1).
	fmt.Printf("Developers on Google Play absent from Chinese stores: %.1f%%.\n",
		100*results.Publishing.GPDevsNotInChineseShare)
	fmt.Printf("Developers on Chinese stores absent from Google Play: %.1f%%.\n\n",
		100*results.Publishing.ChineseDevsNotOnGPShare)

	// Render two full artifacts.
	for _, id := range []string{"T4", "T6"} {
		out, err := results.Render(id)
		if err != nil {
			log.Fatalf("render %s: %v", id, err)
		}
		fmt.Println(out)
	}
	fmt.Println("Run `go run ./cmd/study` for the complete report (every table and figure).")
}
