// Package marketscope is a reproduction, in Go, of "Beyond Google Play: A
// Large-Scale Comparative Study of Chinese Android App Markets" (Wang et al.,
// IMC 2018).
//
// The repository contains everything the study needs, built from scratch on
// the standard library:
//
//   - a synthetic ecosystem generator (internal/synth) that creates
//     developers, apps, APKs and per-market listings whose distributions
//     follow the paper's measurements,
//   - simulators of Google Play and the 16 Chinese app markets
//     (internal/market) with per-store indexing styles, rate limits and
//     moderation behaviour, served over HTTP,
//   - a crawler (internal/crawler) implementing the paper's BFS seeding and
//     cross-market parallel-search collection strategy,
//   - APK, manifest, dex and signing substrates (internal/apk et al.)
//     standing in for apktool/Androguard/ApkSigner,
//   - the analysis toolchain: LibRadar-style third-party library detection
//     (internal/libdetect), WuKong-style clone detection and fake-app
//     clustering (internal/clonedetect), PScout-style over-privilege
//     analysis (internal/permissions), and a simulated VirusTotal with
//     AVClass labeling (internal/avscan),
//   - the study orchestration and experiment registry (internal/core,
//     internal/analysis, internal/report) reproducing every table and
//     figure of the paper,
//   - a GraphQL-style dataset query engine (internal/query): caller-defined
//     fields, composable filters, multi-key sort and limit over the
//     enriched dataset, served through the Go API, the markets'
//     POST /api/scan endpoint and the scan command.
//
// See README.md for a guided tour and quickstart, DESIGN.md for the
// architecture and tool substitutions, and EXPERIMENTS.md for the registry
// mapping each paper artifact to the code reproducing it. The bench harness
// in bench_test.go regenerates every table and figure:
//
//	go test -bench=. -benchmem
package marketscope
