// BenchmarkIngestAppend measures the incremental ingest path end to end over
// the shared 400-app corpus: the latency of applying one listing delta to an
// already-published engine (parse + enrich + re-detect + seal + swap) against
// the cold rebuild it replaces, and the query latency through the serving
// chain immediately after the epoch swap. Before any timing the live engine
// is asserted byte-identical to one cold BuildDatasetFromRecords+Enrich over
// the union — the same equivalence-then-measure pattern as BenchmarkScanQuery
// — and the INGESTSTAT line feeds the CI bench-smoke artifact
// (BENCH_ingest.json) the same way SCANSTAT and SERVESTAT do.
package marketscope_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"testing"
	"time"

	"marketscope/internal/analysis"
	"marketscope/internal/appmeta"
	"marketscope/internal/ingest"
	"marketscope/internal/market"
	"marketscope/internal/query"
)

// ingestBenchRecords returns the corpus in canonical (market, package) order,
// the order the ingestor normalizes every batch to — feeding contiguous
// chunks of this sequence keeps the incremental dataset in exactly the order
// a cold build over the union would produce, so row order is part of what the
// equivalence gate asserts.
func ingestBenchRecords(b *testing.B) []appmeta.Record {
	b.Helper()
	snap := pipelineSnapshot(b)
	records := append([]appmeta.Record(nil), snap.Records()...)
	sort.Slice(records, func(i, j int) bool {
		if records[i].Market != records[j].Market {
			return records[i].Market < records[j].Market
		}
		return records[i].Package < records[j].Package
	})
	return records
}

// ingestBenchListings wraps records (plus their harvested APKs) as delta
// listings.
func ingestBenchListings(b *testing.B, records []appmeta.Record) []ingest.Listing {
	b.Helper()
	snap := pipelineSnapshot(b)
	listings := make([]ingest.Listing, 0, len(records))
	for _, rec := range records {
		l := ingest.Listing{Record: rec}
		if data, ok := snap.APK(rec.Key()); ok {
			l.APK = data
		}
		listings = append(listings, l)
	}
	return listings
}

// ingestCanonical reduces a scan result to the bytes the equivalence gate
// compares: fields, rows (order included) and the matched total.
func ingestCanonical(b *testing.B, res *query.Result, err error) []byte {
	b.Helper()
	if err != nil {
		b.Fatalf("scan: %v", err)
	}
	j, err := json.Marshal(struct {
		Fields any
		Rows   any
		Total  int
	}{res.Fields, res.Rows, res.Meta.TotalMatched})
	if err != nil {
		b.Fatalf("marshal result: %v", err)
	}
	return j
}

func BenchmarkIngestAppend(b *testing.B) {
	snap := pipelineSnapshot(b)
	records := ingestBenchRecords(b)
	const deltaRows = 40
	if len(records) <= deltaRows {
		b.Fatalf("corpus too small: %d records", len(records))
	}
	base := ingestBenchListings(b, records[:len(records)-deltaRows])
	delta := ingestBenchListings(b, records[len(records)-deltaRows:])

	// The cold oracle: one build + enrich over the union, timed as the
	// baseline the delta apply replaces.
	coldStart := time.Now()
	cold, err := analysis.BuildDatasetFromRecords(snap.CrawlTime, records, snap.APK, analysis.BuildOptions{})
	if err != nil {
		b.Fatalf("cold build: %v", err)
	}
	cold.Enrich(analysis.DefaultEnrichOptions())
	coldSrc := cold.QuerySource()
	coldDur := time.Since(coldStart)

	// buildBase publishes the base epoch into a fully configured serving
	// chain, leaving the delta as the only work the measurements see.
	buildBase := func() (*market.Server, *ingest.Ingestor) {
		srv := market.NewServer(market.NewStore(market.Profile{Name: "ingest-bench"}))
		cfg := market.DefaultServeConfig()
		cfg.Timeout = 30 * time.Second
		srv.ConfigureServing(cfg)
		ing := ingest.New(ingest.Options{
			Enrich:    analysis.DefaultEnrichOptions(),
			CrawlTime: snap.CrawlTime,
			Publish:   func(d *analysis.Dataset) { srv.SwapSource(d.QuerySource()) },
		})
		res, err := ing.Apply(ingest.Delta{Seq: 0, Listings: base})
		if err != nil || !res.Applied || res.Added != len(base) {
			b.Fatalf("base apply: %+v (err %v)", res, err)
		}
		return srv, ing
	}

	srv, ing := buildBase()
	applyStart := time.Now()
	res, err := ing.Apply(ingest.Delta{Seq: 1, Listings: delta})
	applyDur := time.Since(applyStart)
	if err != nil || !res.Applied || res.Added != deltaRows {
		b.Fatalf("delta apply: %+v (err %v)", res, err)
	}
	if got := srv.Epoch(); got != 1 {
		b.Fatalf("epoch after delta = %d, want 1 (base epoch 0)", got)
	}

	// Equivalence gate: the incrementally built engine must answer the bench
	// query shapes — plus a full unsorted dump, so row order is asserted too —
	// byte-identically to the cold build over the union.
	liveSrc := ing.Dataset().QuerySource()
	liveAgg, okL := liveSrc.(query.AggregateSource)
	coldAgg, okC := coldSrc.(query.AggregateSource)
	if !okL || !okC {
		b.Fatalf("sources %T / %T do not aggregate", liveSrc, coldSrc)
	}
	dump := query.Query{Fields: []string{"market", "package", "av_positives", "flagged_malware", "library_count"}}
	shapes := []query.Query{dump}
	for _, tc := range scanBenchQueries() {
		shapes = append(shapes, tc.q)
	}
	for i, q := range shapes {
		lres, lerr := liveSrc.Scan(q)
		cres, cerr := coldSrc.Scan(q)
		lj := ingestCanonical(b, lres, lerr)
		cj := ingestCanonical(b, cres, cerr)
		if !bytes.Equal(lj, cj) {
			b.Fatalf("scan %d: incremental engine diverged from the cold build:\nlive %.300s\ncold %.300s", i, lj, cj)
		}
	}
	for _, tc := range aggBenchRequests() {
		lres, lerr := liveAgg.Aggregate(tc.a)
		cres, cerr := coldAgg.Aggregate(tc.a)
		lj := ingestCanonical(b, lres, lerr)
		cj := ingestCanonical(b, cres, cerr)
		if !bytes.Equal(lj, cj) {
			b.Fatalf("%s: incremental aggregation diverged from the cold build:\nlive %.300s\ncold %.300s", tc.name, lj, cj)
		}
	}

	// Post-swap serving latency: the first query after the swap pays the cold
	// compute into the purged cache, repeats are hits against the new epoch.
	body, err := json.Marshal(scanBenchQueries()[0].q)
	if err != nil {
		b.Fatal(err)
	}
	spec := serveBenchRequest{market.ScanPath, body}
	missStart := time.Now()
	miss := servePost(srv, spec)
	missDur := time.Since(missStart)
	if miss.Code != http.StatusOK || miss.Header().Get("X-Cache") != "MISS" {
		b.Fatalf("post-swap scan: status %d, X-Cache %q", miss.Code, miss.Header().Get("X-Cache"))
	}
	hitSamples := make([]time.Duration, 101)
	for i := range hitSamples {
		start := time.Now()
		hit := servePost(srv, spec)
		hitSamples[i] = time.Since(start)
		if hit.Code != http.StatusOK || hit.Header().Get("X-Cache") != "HIT" {
			b.Fatalf("post-swap repeat: status %d, X-Cache %q", hit.Code, hit.Header().Get("X-Cache"))
		}
	}

	sealed := 0
	if res.Sealed {
		sealed = 1
	}
	printOnce("ingest-append", fmt.Sprintf(
		"INGESTSTAT base_rows=%d delta_rows=%d apply_ms=%.1f cold_build_ms=%.1f apply_speedup=%.1f sealed=%d redetected=%d epoch=%d postswap_miss_us=%d postswap_hit_p50_us=%d identical=1",
		len(base), deltaRows, float64(applyDur.Microseconds())/1000,
		float64(coldDur.Microseconds())/1000, float64(coldDur)/float64(applyDur),
		sealed, res.Redetected, srv.Epoch(),
		missDur.Microseconds(), durQuantile(hitSamples, 0.50).Microseconds()))

	// The timed loop: one delta apply per iteration against a fresh base
	// epoch built outside the timer (the ingestor is append-only, so a delta
	// cannot be re-applied to the same instance).
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		_, fresh := buildBase()
		b.StartTimer()
		if _, err := fresh.Apply(ingest.Delta{Seq: 1, Listings: delta}); err != nil {
			b.Fatal(err)
		}
	}
}
